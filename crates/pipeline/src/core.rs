//! The four-domain out-of-order pipeline engine.
//!
//! The engine is trace-driven: the workload generator supplies the committed
//! (correct-path) instruction stream, the branch predictor decides whether
//! fetch may run ahead, and mis-speculation costs appear as fetch stalls
//! (redirect penalty) rather than as executed wrong-path work.
//!
//! Time is continuous (femtoseconds). Each domain clock emits jittered
//! edges; the run loop always advances the domain with the earliest pending
//! edge, so domains interleave exactly as their (possibly scaled) clocks
//! dictate. Any value crossing a domain boundary becomes visible at the
//! first destination edge at least `T_s` after it was produced (§2.2).

use mcd_time::{sync_visible_at, DomainClock, Femtos, SimRng, VoltageController};
use mcd_uarch::lsq::LoadStatus;
use mcd_uarch::{
    BranchPredictor, Cache, CircularQueue, FuKind, FuPool, LoadStoreQueue, LsqEntryId,
    MemAccessKind, PhysReg, RenameUnit, SlotToken,
};
use mcd_workload::{Instruction, OpClass, WorkloadGenerator};

use crate::config::PipelineConfig;
use crate::domains::DomainId;
use crate::events::{EventSpan, InstrTrace};
use crate::governor::{ControlSample, Governor};
use crate::machine::{ClockingMode, MachineConfig};
use crate::result::RunResult;
use crate::stats::{ActivityLedger, Unit};

/// A fetched-but-not-dispatched instruction.
#[derive(Debug, Clone)]
struct Fetched {
    seq: u64,
    instr: Instruction,
    fetch_span: EventSpan,
    mispredicted: bool,
}

/// An in-flight (dispatched, uncommitted) instruction.
#[derive(Debug, Clone)]
struct InFlight {
    seq: u64,
    instr: Instruction,
    dest_phys: Option<PhysReg>,
    prev_phys: Option<PhysReg>,
    src_phys: [Option<PhysReg>; 2],
    src_producers: [Option<u64>; 2],
    iq_token: Option<SlotToken>,
    lsq_id: Option<LsqEntryId>,
    /// When the backend scheduler first sees this IQ entry.
    iq_visible_at: Femtos,
    /// AGU µop issued (memory ops).
    agu_issued: bool,
    /// Address applied to the LSQ in the load/store domain.
    addr_applied: bool,
    /// Cache access performed (loads) / ready check passed (stores).
    mem_done: bool,
    /// Execute issued (non-memory ops).
    exec_issued: bool,
    /// All work done; may commit once visible to the front end.
    completed: bool,
    completion_visible_fe: Femtos,
    fetch_span: EventSpan,
    dispatch_span: EventSpan,
    addr_span: Option<EventSpan>,
    mem_span: Option<EventSpan>,
    exec_span: Option<EventSpan>,
    l1_miss: bool,
    l2_miss: bool,
    mispredicted: bool,
}

/// Safety valve: a run that produces this many edges without committing its
/// target has deadlocked (a bug), so panic with context instead of hanging.
const MAX_EDGES_PER_INSTRUCTION: u64 = 4_000;

/// Accumulators feeding an on-line governor between control decisions.
#[derive(Debug, Clone, Default)]
struct ControlState {
    /// Σ occupancy fraction per domain, over that domain's ticks.
    util_sum: [f64; DomainId::COUNT],
    /// Ticks sampled per domain.
    util_samples: [u64; DomainId::COUNT],
    /// Operations issued per domain since the last decision.
    issued: [u64; DomainId::COUNT],
    /// Instructions committed since the last decision.
    committed: u64,
    /// Start of the current control interval.
    start: Femtos,
}

/// The pipeline simulator.
///
/// Build one with [`Pipeline::new`], then call [`Pipeline::run`].
///
/// # Example
///
/// ```
/// use mcd_pipeline::{MachineConfig, Pipeline};
/// use mcd_workload::suites;
///
/// let machine = MachineConfig::baseline(7);
/// let generator = mcd_workload::WorkloadGenerator::new(
///     suites::by_name("adpcm").expect("known benchmark"),
///     machine.seed,
/// );
/// let result = Pipeline::new(machine, generator).run(2_000);
/// assert_eq!(result.committed, 2_000);
/// assert!(result.ipc() > 0.1);
/// ```
pub struct Pipeline {
    cfg: MachineConfig,
    pcfg: PipelineConfig,
    gen: WorkloadGenerator,
    clocks: Vec<DomainClock>,
    /// Next pending edge per clock.
    next_edge: Vec<Femtos>,
    /// Schedule cursor.
    schedule_pos: usize,

    // Front end.
    bpred: BranchPredictor,
    l1i: Cache,
    fetchq: CircularQueue<Fetched>,
    pending_fetch: Option<Instruction>,
    fetch_resume_at: Femtos,
    /// Branch seq fetch is blocked on (mispredict), if any.
    fetch_blocked_on: Option<u64>,
    next_seq: u64,

    // Rename / ROB.
    rename: RenameUnit,
    rob: std::collections::VecDeque<InFlight>,
    rob_head_seq: u64,

    // Backend.
    iq_int: mcd_uarch::SlotPool<u64>,
    iq_fp: mcd_uarch::SlotPool<u64>,
    lsq: LoadStoreQueue,
    fus: FuPool,
    l1d: Cache,
    l2: Cache,
    /// (visible_at, seq, addr): effective addresses in flight to the LSQ.
    pending_addrs: Vec<(Femtos, u64, u64)>,

    /// Per-physical-register visibility time in each domain.
    ready_at: Vec<[Femtos; DomainId::COUNT]>,
    /// Which in-flight instruction wrote each physical register.
    writer_of: Vec<Option<u64>>,

    // On-line control (None when driven by a static schedule only).
    governor: Option<Box<dyn Governor>>,
    control: ControlState,
    control_next: Femtos,

    // Accounting.
    ledger: ActivityLedger,
    committed: u64,
    /// Commit target for the current run (commit stops exactly there).
    target: u64,
    last_commit_time: Femtos,
    branch_lookups: u64,
    branch_mispredicts: u64,
    trace: Vec<InstrTrace>,
}

impl Pipeline {
    /// Builds a pipeline for one run.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline configuration fails validation.
    pub fn new(cfg: MachineConfig, gen: WorkloadGenerator) -> Self {
        let pcfg = cfg.pipeline.clone();
        if let Err(e) = pcfg.validate() {
            panic!("invalid pipeline configuration: {e}");
        }
        let root = SimRng::seed_from_u64(cfg.seed);
        let clocks: Vec<DomainClock> = match &cfg.mode {
            ClockingMode::SingleDomain { frequency } => {
                vec![DomainClock::fixed_point(
                    *frequency,
                    &cfg.vf,
                    cfg.jitter,
                    root.derive(100).next_u64_seed(),
                )]
            }
            ClockingMode::Mcd { frequencies } => DomainId::ALL
                .iter()
                .map(|d| {
                    let seed = root.derive(100 + d.index() as u64).next_u64_seed();
                    let ctl = VoltageController::new(
                        cfg.dvfs_model,
                        cfg.vf,
                        cfg.pll,
                        frequencies[d.index()],
                    );
                    DomainClock::with_controller(ctl, cfg.jitter, seed)
                })
                .collect(),
        };
        let total_phys = (pcfg.phys_int + pcfg.phys_fp) as usize;
        Pipeline {
            bpred: BranchPredictor::new(pcfg.bpred),
            l1i: Cache::new(pcfg.l1i),
            l1d: Cache::new(pcfg.l1d),
            l2: Cache::new(pcfg.l2),
            fetchq: CircularQueue::new(pcfg.fetch_queue),
            pending_fetch: None,
            fetch_resume_at: Femtos::ZERO,
            fetch_blocked_on: None,
            next_seq: 0,
            rename: RenameUnit::new(pcfg.phys_int, pcfg.phys_fp),
            rob: std::collections::VecDeque::with_capacity(pcfg.rob_size),
            rob_head_seq: 0,
            iq_int: mcd_uarch::SlotPool::new(pcfg.iq_int),
            iq_fp: mcd_uarch::SlotPool::new(pcfg.iq_fp),
            lsq: LoadStoreQueue::new(pcfg.lsq_size),
            fus: FuPool::new(pcfg.fus),
            pending_addrs: Vec::new(),
            ready_at: vec![[Femtos::ZERO; DomainId::COUNT]; total_phys],
            writer_of: vec![None; total_phys],
            governor: None,
            control: ControlState::default(),
            control_next: Femtos::MAX,
            ledger: ActivityLedger::new(),
            committed: 0,
            target: u64::MAX,
            last_commit_time: Femtos::ZERO,
            branch_lookups: 0,
            branch_mispredicts: 0,
            trace: Vec::new(),
            next_edge: Vec::new(),
            schedule_pos: 0,
            clocks,
            gen,
            cfg,
            pcfg,
        }
    }

    fn clock_index(&self, d: DomainId) -> usize {
        if self.clocks.len() == 1 {
            0
        } else {
            d.index()
        }
    }

    fn voltage(&self, d: DomainId) -> f64 {
        self.clocks[self.clock_index(d)].voltage().as_volts()
    }

    fn period(&self, d: DomainId) -> Femtos {
        self.clocks[self.clock_index(d)].period()
    }

    /// When a value produced at `t` in `src` becomes usable in `dst`.
    fn vis(&self, t: Femtos, src: DomainId, dst: DomainId) -> Femtos {
        if self.clocks.len() == 1 || src == dst {
            return t;
        }
        sync_visible_at(&self.cfg.sync, t, self.period(src), self.period(dst))
    }

    fn rob_get(&self, seq: u64) -> &InFlight {
        &self.rob[(seq - self.rob_head_seq) as usize]
    }

    fn rob_get_mut(&mut self, seq: u64) -> &mut InFlight {
        &mut self.rob[(seq - self.rob_head_seq) as usize]
    }

    /// Marks `phys` written at `t` by domain `src`: consumers in each domain
    /// see it after the synchronization window.
    fn set_ready(&mut self, phys: PhysReg, t: Femtos, src: DomainId) {
        let mut times = [t; DomainId::COUNT];
        if self.clocks.len() > 1 {
            for d in DomainId::ALL {
                times[d.index()] = self.vis(t, src, d);
            }
        }
        self.ready_at[phys.index()] = times;
    }

    fn src_ready_at(&self, phys: Option<PhysReg>, d: DomainId) -> Femtos {
        match phys {
            Some(p) => self.ready_at[p.index()][d.index()],
            None => Femtos::ZERO,
        }
    }

    /// Streams `n` instructions through the caches and branch predictor
    /// without timing, then clears their statistics. This stands in for the
    /// paper's practice of simulating a window deep inside execution, where
    /// long-lived structures are already warm.
    fn warm_structures(&mut self, n: u64) {
        let mut warm_gen = WorkloadGenerator::new(self.gen.profile().clone(), self.cfg.seed);
        // Pre-touch the long-reuse-distance warm sets into the L2 (they are
        // deliberately L1-hostile, so only the L2 is touched).
        for line in warm_gen.warm_footprint() {
            self.l2.access(line, false);
        }
        // Cover at least one full pass over the program's phases so that no
        // phase starts cold inside the measured window.
        let n = n.max(self.gen.profile().cycle_length() + 10_000);
        for _ in 0..n {
            let instr = warm_gen.next_instruction();
            if !self.l1i.access(instr.pc, false) {
                self.l2.access(instr.pc, false);
            }
            if let Some(mem) = instr.mem {
                // Skip the streaming region: the timed run re-generates the
                // same address sequence, and pre-touching it would turn
                // compulsory misses into false hits.
                if mem.addr < 0x8000_0000 {
                    let is_write = instr.op == OpClass::Store;
                    if !self.l1d.access(mem.addr, is_write) {
                        self.l2.access(mem.addr, is_write);
                    }
                }
            }
            if let Some(b) = instr.branch {
                self.bpred.update(instr.pc, b.taken, b.target);
            }
        }
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.bpred.reset_stats();
    }

    /// Runs under an on-line DVFS governor until `target` instructions
    /// commit. The governor is polled at its control interval with fresh
    /// per-domain utilization statistics and its frequency requests go
    /// through the machine's normal DVFS transition model.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run_with_governor(mut self, target: u64, governor: Box<dyn Governor>) -> RunResult {
        self.control_next = governor.interval();
        self.governor = Some(governor);
        self.run(target)
    }

    /// Runs until `target` instructions commit; consumes the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run(mut self, target: u64) -> RunResult {
        assert!(target > 0, "target instruction count must be positive");
        self.target = target;
        if self.cfg.warmup_instructions > 0 {
            self.warm_structures(self.cfg.warmup_instructions);
        }
        let n_clocks = self.clocks.len();
        self.next_edge = (0..n_clocks).map(|i| self.clocks[i].next_edge()).collect();
        let mut edges: u64 = 0;
        let max_edges = target
            .saturating_mul(MAX_EDGES_PER_INSTRUCTION)
            .max(1_000_000);
        while self.committed < target {
            edges += 1;
            assert!(
                edges < max_edges,
                "pipeline deadlock: {} of {} committed after {} edges",
                self.committed,
                target,
                edges
            );
            // Earliest pending clock edge wins.
            let (ci, _) = self
                .next_edge
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| **t)
                .expect("at least one clock");
            let now = self.next_edge[ci];
            self.apply_schedule(now);
            if self.governor.is_some() {
                self.sample_utilization(ci, n_clocks);
                if now >= self.control_next {
                    self.control_decision(now);
                }
            }
            if n_clocks == 1 {
                // Single clock: all logical domains tick on the same edge.
                self.tick_commit_dispatch_fetch(now);
                self.tick_exec(DomainId::Integer, now);
                self.tick_exec(DomainId::FloatingPoint, now);
                self.tick_loadstore(now);
            } else {
                match DomainId::ALL[ci] {
                    DomainId::FrontEnd => self.tick_commit_dispatch_fetch(now),
                    DomainId::Integer => self.tick_exec(DomainId::Integer, now),
                    DomainId::FloatingPoint => self.tick_exec(DomainId::FloatingPoint, now),
                    DomainId::LoadStore => self.tick_loadstore(now),
                }
            }
            self.next_edge[ci] = self.clocks[ci].next_edge();
        }
        self.into_result()
    }

    /// Samples queue occupancy for the domain(s) ticking on this edge.
    fn sample_utilization(&mut self, ci: usize, n_clocks: usize) {
        let record = |state: &mut ControlState, d: DomainId, frac: f64| {
            state.util_sum[d.index()] += frac;
            state.util_samples[d.index()] += 1;
        };
        let fetchq = self.fetchq.len() as f64 / self.fetchq.capacity() as f64;
        let iq_int = self.iq_int.len() as f64 / self.iq_int.capacity() as f64;
        let iq_fp = self.iq_fp.len() as f64 / self.iq_fp.capacity() as f64;
        let lsq = self.lsq.len() as f64 / self.lsq.capacity() as f64;
        if n_clocks == 1 {
            record(&mut self.control, DomainId::FrontEnd, fetchq);
            record(&mut self.control, DomainId::Integer, iq_int);
            record(&mut self.control, DomainId::FloatingPoint, iq_fp);
            record(&mut self.control, DomainId::LoadStore, lsq);
        } else {
            let d = DomainId::ALL[ci];
            let frac = match d {
                DomainId::FrontEnd => fetchq,
                DomainId::Integer => iq_int,
                DomainId::FloatingPoint => iq_fp,
                DomainId::LoadStore => lsq,
            };
            record(&mut self.control, d, frac);
        }
    }

    /// Hands the governor a fresh sample and applies its frequency requests.
    fn control_decision(&mut self, now: Femtos) {
        let Some(mut governor) = self.governor.take() else {
            return;
        };
        let mut utilization = [0.0; DomainId::COUNT];
        for (i, util) in utilization.iter_mut().enumerate() {
            if self.control.util_samples[i] > 0 {
                *util = self.control.util_sum[i] / self.control.util_samples[i] as f64;
            }
        }
        let sample = ControlSample {
            start: self.control.start,
            end: now,
            queue_utilization: utilization,
            issued: self.control.issued,
            committed: self.committed - self.control.committed,
        };
        let decision = governor.decide(&sample);
        for d in DomainId::ALL {
            if let Some(f) = decision[d.index()] {
                let ci = self.clock_index(d);
                self.clocks[ci].request_frequency(now, f);
            }
        }
        self.control = ControlState {
            start: now,
            committed: self.committed,
            ..ControlState::default()
        };
        self.control_next = now + governor.interval();
        self.governor = Some(governor);
    }

    fn apply_schedule(&mut self, now: Femtos) {
        if self.clocks.len() == 1 {
            return; // schedules only drive MCD machines
        }
        while self.schedule_pos < self.cfg.schedule.len() {
            let entry = self.cfg.schedule.entries()[self.schedule_pos];
            if entry.at > now {
                break;
            }
            let ci = entry.domain.index();
            self.clocks[ci].request_frequency(entry.at, entry.frequency);
            self.schedule_pos += 1;
        }
    }

    // ------------------------------------------------------------------
    // Front end: commit, dispatch, fetch (in that order within an edge).
    // ------------------------------------------------------------------

    fn tick_commit_dispatch_fetch(&mut self, now: Femtos) {
        self.tick_commit(now);
        self.tick_dispatch(now);
        self.tick_fetch(now);
    }

    fn tick_commit(&mut self, now: Femtos) {
        let v_fe = self.voltage(DomainId::FrontEnd);
        let v_ls = self.voltage(DomainId::LoadStore);
        for _ in 0..self.pcfg.retire_width {
            if self.committed >= self.target {
                break;
            }
            let Some(front) = self.rob.front() else { break };
            if !front.completed || front.completion_visible_fe > now {
                break;
            }
            let mut entry = self.rob.pop_front().expect("front exists");
            self.rob_head_seq += 1;
            // Stores write the data cache at commit.
            if entry.instr.op == OpClass::Store {
                let addr = entry.instr.mem.expect("store has address").addr;
                let l1_hit = self.l1d.access(addr, true);
                self.ledger.record(Unit::Dcache, v_ls);
                if !l1_hit {
                    let l2_hit = self.l2.access(addr, true);
                    self.ledger.record(Unit::L2, v_ls);
                    entry.l1_miss = true;
                    entry.l2_miss = !l2_hit;
                }
                entry.mem_span = Some(EventSpan::new(now, now + self.period(DomainId::LoadStore)));
            }
            if let Some(id) = entry.lsq_id {
                self.lsq.release_oldest(id);
            }
            if let Some(prev) = entry.prev_phys {
                self.rename.free(prev);
            }
            self.ledger.record(Unit::Rob, v_fe);
            self.committed += 1;
            self.last_commit_time = now;
            if self.cfg.collect_trace {
                self.trace.push(InstrTrace {
                    seq: entry.seq,
                    op: entry.instr.op,
                    exec_domain: DomainId::executing(entry.instr.op),
                    fetch: entry.fetch_span,
                    dispatch: entry.dispatch_span,
                    addr_calc: entry.addr_span,
                    mem_access: entry.mem_span,
                    execute: entry.exec_span,
                    commit: now,
                    src_producers: entry.src_producers,
                    l1_miss: entry.l1_miss,
                    l2_miss: entry.l2_miss,
                    mispredicted: entry.mispredicted,
                });
            }
        }
    }

    fn tick_dispatch(&mut self, now: Femtos) {
        let fe_period = self.period(DomainId::FrontEnd);
        let v_fe = self.voltage(DomainId::FrontEnd);
        for _ in 0..self.pcfg.decode_width {
            let Some(front) = self.fetchq.front() else {
                break;
            };
            if front.fetch_span.end > now {
                break; // fetched this very edge; dispatch next cycle
            }
            if self.rob.len() >= self.pcfg.rob_size {
                break;
            }
            let op = front.instr.op;
            let is_mem = op.is_mem();
            // Structural checks before consuming the fetch-queue entry.
            let iq_target_full = match DomainId::executing(op) {
                DomainId::FloatingPoint => self.iq_fp.is_full(),
                // Memory ops need an integer-IQ slot for address generation.
                _ => self.iq_int.is_full(),
            };
            if iq_target_full || (is_mem && (self.lsq.is_full() || self.iq_int.is_full())) {
                break;
            }
            let needs_dest = front.instr.dest.is_some();
            if needs_dest {
                let dest = front.instr.dest.expect("checked");
                let free = if dest.is_fp() {
                    self.rename.free_fp()
                } else {
                    self.rename.free_int()
                };
                if free == 0 {
                    break;
                }
            }
            let fetched = self.fetchq.pop_front().expect("front exists");
            // Rename sources.
            let mut src_phys = [None, None];
            let mut src_producers = [None, None];
            for (i, src) in fetched.instr.srcs.iter().enumerate() {
                if let Some(reg) = src {
                    let phys = self.rename.lookup(*reg);
                    src_phys[i] = Some(phys);
                    src_producers[i] = self.writer_of[phys.index()];
                }
            }
            // Rename destination.
            let (dest_phys, prev_phys) = match fetched.instr.dest {
                Some(reg) => {
                    let renamed = self.rename.allocate(reg).expect("free list checked");
                    self.ready_at[renamed.new.index()] = [Femtos::MAX; DomainId::COUNT];
                    self.writer_of[renamed.new.index()] = Some(fetched.seq);
                    (Some(renamed.new), Some(renamed.prev))
                }
                None => (None, None),
            };
            let exec_domain = DomainId::executing(op);
            // Queue writes become visible to the consuming scheduler after
            // the synchronization window (§2.2).
            let sched_domain = if is_mem {
                DomainId::Integer
            } else {
                exec_domain
            };
            let iq_visible_at = self.vis(now, DomainId::FrontEnd, sched_domain);
            let iq_token = match sched_domain {
                DomainId::FloatingPoint => {
                    let v_fp = self.voltage(DomainId::FloatingPoint);
                    self.ledger.record(Unit::IqFp, v_fp);
                    Some(self.iq_fp.insert(fetched.seq).expect("capacity checked"))
                }
                _ => {
                    let v_int = self.voltage(DomainId::Integer);
                    self.ledger.record(Unit::IqInt, v_int);
                    Some(self.iq_int.insert(fetched.seq).expect("capacity checked"))
                }
            };
            let lsq_id = if is_mem {
                let kind = if op == OpClass::Load {
                    MemAccessKind::Load
                } else {
                    MemAccessKind::Store
                };
                let v_ls = self.voltage(DomainId::LoadStore);
                self.ledger.record(Unit::Lsq, v_ls);
                Some(self.lsq.allocate(kind).expect("capacity checked"))
            } else {
                None
            };
            self.ledger.record(Unit::Rename, v_fe);
            self.ledger.record(Unit::Rob, v_fe);
            self.rob.push_back(InFlight {
                seq: fetched.seq,
                instr: fetched.instr,
                dest_phys,
                prev_phys,
                src_phys,
                src_producers,
                iq_token,
                lsq_id,
                iq_visible_at,
                agu_issued: false,
                addr_applied: false,
                mem_done: false,
                exec_issued: false,
                completed: false,
                completion_visible_fe: Femtos::MAX,
                fetch_span: fetched.fetch_span,
                dispatch_span: EventSpan::new(now, now + fe_period),
                addr_span: None,
                mem_span: None,
                exec_span: None,
                l1_miss: false,
                l2_miss: false,
                mispredicted: fetched.mispredicted,
            });
        }
    }

    fn tick_fetch(&mut self, now: Femtos) {
        if self.fetch_blocked_on.is_some() || now < self.fetch_resume_at {
            return;
        }
        let fe_period = self.period(DomainId::FrontEnd);
        let v_fe = self.voltage(DomainId::FrontEnd);
        for _ in 0..self.pcfg.decode_width {
            if self.fetchq.is_full() {
                break;
            }
            let instr = match self.pending_fetch.take() {
                Some(i) => i,
                None => self.gen.next_instruction(),
            };
            // I-cache access.
            self.ledger.record(Unit::ICache, v_fe);
            let hit = self.l1i.access(instr.pc, false);
            if !hit {
                // Miss is served by the L2, which lives in the load/store
                // domain: cross there and back.
                let v_ls = self.voltage(DomainId::LoadStore);
                self.ledger.record(Unit::L2, v_ls);
                let l2_hit = self.l2.access(instr.pc, false);
                let to_ls = self.vis(now, DomainId::FrontEnd, DomainId::LoadStore);
                let mut done = to_ls + self.period(DomainId::LoadStore) * self.pcfg.l2_latency;
                if !l2_hit {
                    done += self.pcfg.mem_latency;
                }
                self.fetch_resume_at = self.vis(done, DomainId::LoadStore, DomainId::FrontEnd);
                self.pending_fetch = Some(instr);
                break;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let fetch_span = EventSpan::new(now, now + fe_period);
            let mut mispredicted = false;
            if let Some(branch) = instr.branch {
                self.ledger.record(Unit::Bpred, v_fe);
                self.branch_lookups += 1;
                let pred = self.bpred.predict(instr.pc);
                let direction_ok = pred.taken == branch.taken;
                let target_ok = !branch.taken || pred.target == Some(branch.target);
                if !(direction_ok && target_ok) {
                    mispredicted = true;
                    self.branch_mispredicts += 1;
                    self.fetch_blocked_on = Some(seq);
                    self.fetch_resume_at = Femtos::MAX;
                }
                // Correctly predicted taken branches fetch through (line
                // prediction); only mispredicts break the stream.
            }
            let pushed = self.fetchq.push_back(Fetched {
                seq,
                instr,
                fetch_span,
                mispredicted,
            });
            assert!(pushed.is_ok(), "fetch-queue fullness was checked");
            if mispredicted {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Integer / floating-point execution domains.
    // ------------------------------------------------------------------

    fn tick_exec(&mut self, domain: DomainId, now: Femtos) {
        debug_assert!(matches!(
            domain,
            DomainId::Integer | DomainId::FloatingPoint
        ));
        let width = match domain {
            DomainId::Integer => self.pcfg.issue_width_int,
            _ => self.pcfg.issue_width_fp,
        };
        // Collect schedulable entries oldest-first (the paper's scheduler
        // issues by age among ready entries).
        let mut candidates: Vec<u64> = match domain {
            DomainId::Integer => self.iq_int.iter().map(|(_, s)| *s).collect(),
            _ => self.iq_fp.iter().map(|(_, s)| *s).collect(),
        };
        candidates.sort_unstable();
        let mut issued = 0;
        for seq in candidates {
            if issued >= width {
                break;
            }
            if self.try_issue(domain, seq, now) {
                issued += 1;
            }
        }
    }

    /// Attempts to issue one IQ entry; returns whether it issued.
    fn try_issue(&mut self, domain: DomainId, seq: u64, now: Femtos) -> bool {
        let period = self.period(domain);
        let entry = self.rob_get(seq);
        if entry.iq_visible_at > now {
            return false;
        }
        let op = entry.instr.op;
        if op.is_mem() {
            // Address-generation µop (always in the integer domain).
            let addr_src = match op {
                OpClass::Load => entry.src_phys[0],
                _ => entry.src_phys[1],
            };
            if self.src_ready_at(addr_src, DomainId::Integer) > now {
                return false;
            }
            let busy_until = now + period; // AGU is pipelined
            if !self
                .fus
                .try_acquire(FuKind::IntAlu, now.as_femtos(), busy_until.as_femtos())
            {
                return false;
            }
            let done = now + period * self.pcfg.lat_agu;
            let addr = self
                .rob_get(seq)
                .instr
                .mem
                .expect("mem op has address")
                .addr;
            let vis_ls = self.vis(done, DomainId::Integer, DomainId::LoadStore);
            self.pending_addrs.push((vis_ls, seq, addr));
            let v_int = self.voltage(DomainId::Integer);
            self.ledger.record(Unit::AluInt, v_int);
            self.ledger.record(Unit::RegInt, v_int);
            self.ledger.record(Unit::BusInt, v_int);
            self.control.issued[DomainId::Integer.index()] += 1;
            let token = self.rob_get(seq).iq_token.expect("in IQ");
            self.iq_int.remove(token);
            let e = self.rob_get_mut(seq);
            e.agu_issued = true;
            e.iq_token = None;
            e.addr_span = Some(EventSpan::new(now, done));
            return true;
        }
        // Regular execution: all sources visible in this domain.
        for i in 0..2 {
            let src = entry.src_phys[i];
            if self.src_ready_at(src, domain) > now {
                return false;
            }
        }
        let (fu, unpipelined) = match op {
            OpClass::IntAlu | OpClass::Branch => (FuKind::IntAlu, false),
            OpClass::IntMul => (FuKind::IntMulDiv, false),
            OpClass::IntDiv => (FuKind::IntMulDiv, true),
            OpClass::FpAdd => (FuKind::FpAlu, false),
            OpClass::FpMul => (FuKind::FpMulDiv, false),
            OpClass::FpDiv | OpClass::FpSqrt => (FuKind::FpMulDiv, true),
            OpClass::Load | OpClass::Store => unreachable!("handled above"),
        };
        let latency = self.pcfg.latency(op);
        let done = now + period * latency;
        let busy_until = if unpipelined { done } else { now + period };
        if !self
            .fus
            .try_acquire(fu, now.as_femtos(), busy_until.as_femtos())
        {
            return false;
        }
        // Energy: issue-queue read, register-file operands + writeback,
        // functional unit, result bus.
        let v = self.voltage(domain);
        match domain {
            DomainId::Integer => {
                self.ledger.record(Unit::IqInt, v);
                self.ledger.record_n(Unit::RegInt, v, 3);
                self.ledger.record(Unit::BusInt, v);
                match fu {
                    FuKind::IntMulDiv => self.ledger.record(Unit::MulInt, v),
                    _ => self.ledger.record(Unit::AluInt, v),
                }
            }
            _ => {
                self.ledger.record(Unit::IqFp, v);
                self.ledger.record_n(Unit::RegFp, v, 3);
                self.ledger.record(Unit::BusFp, v);
                match fu {
                    FuKind::FpMulDiv => self.ledger.record(Unit::MulFp, v),
                    _ => self.ledger.record(Unit::AluFp, v),
                }
            }
        }
        self.control.issued[domain.index()] += 1;
        // Writeback visibility.
        if let Some(dest) = self.rob_get(seq).dest_phys {
            self.set_ready(dest, done, domain);
        }
        // Branch resolution.
        let is_branch = op == OpClass::Branch;
        if is_branch {
            let (pc, taken, target, mispredicted) = {
                let e = self.rob_get(seq);
                let b = e.instr.branch.expect("branch payload");
                (e.instr.pc, b.taken, b.target, e.mispredicted)
            };
            self.bpred.update(pc, taken, target);
            let v_fe = self.voltage(DomainId::FrontEnd);
            self.ledger.record(Unit::Bpred, v_fe);
            if mispredicted {
                let redirect = self.vis(done, domain, DomainId::FrontEnd);
                let fe_period = self.period(DomainId::FrontEnd);
                self.fetch_resume_at = redirect + fe_period * self.pcfg.mispredict_penalty;
                debug_assert_eq!(self.fetch_blocked_on, Some(seq));
                self.fetch_blocked_on = None;
            }
        }
        let completion_visible_fe = self.vis(done, domain, DomainId::FrontEnd);
        let token = self.rob_get(seq).iq_token.expect("in IQ");
        match domain {
            DomainId::Integer => {
                self.iq_int.remove(token);
            }
            _ => {
                self.iq_fp.remove(token);
            }
        }
        let e = self.rob_get_mut(seq);
        e.exec_issued = true;
        e.iq_token = None;
        e.exec_span = Some(EventSpan::new(now, done));
        e.completed = true;
        e.completion_visible_fe = completion_visible_fe;
        true
    }

    // ------------------------------------------------------------------
    // Load/store domain.
    // ------------------------------------------------------------------

    fn tick_loadstore(&mut self, now: Femtos) {
        // 1. Apply effective addresses that have crossed into this domain.
        let mut applied = Vec::new();
        self.pending_addrs.retain(|(vis, seq, addr)| {
            if *vis <= now {
                applied.push((*seq, *addr));
                false
            } else {
                true
            }
        });
        for (seq, addr) in applied {
            let id = self.rob_get(seq).lsq_id.expect("mem op in LSQ");
            self.lsq.set_address(id, addr);
            self.rob_get_mut(seq).addr_applied = true;
        }

        // 2. Complete stores whose address and data are both present.
        let v_ls = self.voltage(DomainId::LoadStore);
        let store_seqs: Vec<u64> = self
            .rob
            .iter()
            .filter(|e| e.instr.op == OpClass::Store && e.addr_applied && !e.mem_done)
            .map(|e| e.seq)
            .collect();
        for seq in store_seqs {
            let data_src = self.rob_get(seq).src_phys[0];
            if self.src_ready_at(data_src, DomainId::LoadStore) > now {
                continue;
            }
            self.ledger.record(Unit::Lsq, v_ls);
            let completion_visible_fe = self.vis(now, DomainId::LoadStore, DomainId::FrontEnd);
            let e = self.rob_get_mut(seq);
            e.mem_done = true;
            e.completed = true;
            e.completion_visible_fe = completion_visible_fe;
        }

        // 3. Issue ready loads, oldest first, up to the port width.
        let mut load_seqs: Vec<u64> = self
            .rob
            .iter()
            .filter(|e| e.instr.op == OpClass::Load && e.addr_applied && !e.mem_done)
            .map(|e| e.seq)
            .collect();
        load_seqs.sort_unstable();
        let mut issued = 0;
        for seq in load_seqs {
            if issued >= self.pcfg.issue_width_mem {
                break;
            }
            let id = self.rob_get(seq).lsq_id.expect("load in LSQ");
            let status = self.lsq.load_status(id);
            let ls_period = self.period(DomainId::LoadStore);
            let (done, l1_miss, l2_miss, forwarded) = match status {
                LoadStatus::ReadyFromCache => {
                    let busy = now + ls_period;
                    if !self
                        .fus
                        .try_acquire(FuKind::MemPort, now.as_femtos(), busy.as_femtos())
                    {
                        break; // ports exhausted this cycle
                    }
                    let addr = self.rob_get(seq).instr.mem.expect("load address").addr;
                    self.ledger.record(Unit::Dcache, v_ls);
                    let l1_hit = self.l1d.access(addr, false);
                    let mut done = now + ls_period * self.pcfg.l1_latency;
                    let mut l2_miss = false;
                    if !l1_hit {
                        self.ledger.record(Unit::L2, v_ls);
                        let l2_hit = self.l2.access(addr, false);
                        done = now + ls_period * (self.pcfg.l1_latency + self.pcfg.l2_latency);
                        if !l2_hit {
                            done += self.pcfg.mem_latency;
                            l2_miss = true;
                        }
                    }
                    (done, !l1_hit, l2_miss, false)
                }
                LoadStatus::ReadyForwarded { .. } => (now + ls_period, false, false, true),
                _ => continue,
            };
            self.ledger.record(Unit::Lsq, v_ls);
            self.ledger.record(Unit::BusLs, v_ls);
            self.control.issued[DomainId::LoadStore.index()] += 1;
            self.lsq.mark_issued(id, forwarded);
            if let Some(dest) = self.rob_get(seq).dest_phys {
                self.set_ready(dest, done, DomainId::LoadStore);
            }
            let completion_visible_fe = self.vis(done, DomainId::LoadStore, DomainId::FrontEnd);
            let e = self.rob_get_mut(seq);
            e.mem_done = true;
            e.mem_span = Some(EventSpan::new(now, done));
            e.l1_miss = l1_miss;
            e.l2_miss = l2_miss;
            e.completed = true;
            e.completion_visible_fe = completion_visible_fe;
            issued += 1;
        }
    }

    fn into_result(self) -> RunResult {
        let mut domain_cycles = [0u64; DomainId::COUNT];
        let mut domain_v2 = [0f64; DomainId::COUNT];
        let mut domain_idle = [Femtos::ZERO; DomainId::COUNT];
        let mut domain_transitions = [0u64; DomainId::COUNT];
        let mut avg_freq = [0f64; DomainId::COUNT];
        let secs = self.last_commit_time.as_secs_f64().max(1e-18);
        for d in DomainId::ALL {
            let c = &self.clocks[if self.clocks.len() == 1 { 0 } else { d.index() }];
            domain_cycles[d.index()] = c.cycles();
            domain_v2[d.index()] = c.v2_cycle_sum();
            domain_idle[d.index()] = c.idle_total();
            domain_transitions[d.index()] =
                c.controller().map(|ctl| ctl.transitions()).unwrap_or(0);
            avg_freq[d.index()] = c.cycles() as f64 / secs;
        }
        if self.clocks.len() == 1 {
            // A single physical clock serves all four logical domains; the
            // per-domain split of clock energy is handled by the power model
            // via capacitance shares, so report the same cycle counts.
            let cycles = self.clocks[0].cycles();
            let v2 = self.clocks[0].v2_cycle_sum();
            for d in DomainId::ALL {
                domain_cycles[d.index()] = cycles;
                domain_v2[d.index()] = v2;
                avg_freq[d.index()] = cycles as f64 / secs;
            }
        }
        RunResult {
            committed: self.committed,
            total_time: self.last_commit_time,
            domain_cycles,
            domain_v2_cycles: domain_v2,
            domain_idle,
            domain_transitions,
            avg_frequency_hz: avg_freq,
            ledger: self.ledger,
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            branch_lookups: self.branch_lookups,
            branch_mispredicts: self.branch_mispredicts,
            lsq_forwards: self.lsq.forwards(),
            trace: if self.cfg.collect_trace {
                Some(self.trace)
            } else {
                None
            },
        }
    }
}

/// Extension trait kept private: deriving a u64 seed from a [`SimRng`].
trait SeedProbe {
    fn next_u64_seed(self) -> u64;
}

impl SeedProbe for SimRng {
    fn next_u64_seed(mut self) -> u64 {
        self.next_u64()
    }
}
