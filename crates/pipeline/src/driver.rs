//! Convenience entry points for running simulations.

use mcd_trace::{RunTrace, TraceConfig};
use mcd_workload::{BenchmarkProfile, WorkloadGenerator};

use crate::core::Pipeline;
use crate::governor::Governor;
use crate::machine::MachineConfig;
use crate::result::RunResult;

/// Runs `machine` on `profile` until `instructions` commit.
///
/// The workload stream is derived deterministically from the machine seed,
/// so two runs with different clocking but equal seeds execute the same
/// dynamic instruction sequence — the property the paper's two-phase
/// (trace, then dynamic) methodology depends on.
///
/// # Example
///
/// ```
/// use mcd_pipeline::{simulate, MachineConfig};
/// use mcd_workload::suites;
///
/// let profile = suites::by_name("g721").expect("known benchmark");
/// let r = simulate(&MachineConfig::baseline(3), &profile, 1_000);
/// assert_eq!(r.committed, 1_000);
/// ```
pub fn simulate(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    instructions: u64,
) -> RunResult {
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    Pipeline::new(machine.clone(), generator).run(instructions)
}

/// [`simulate`] on the deliberately-naive reference interpreter (no edge
/// scheduler, no fast-forward, no warm-state cache, no incremental
/// operating-point bookkeeping). Results are byte-identical to
/// [`simulate`]'s — `mcd-check` exists to prove that claim.
pub fn simulate_reference(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    instructions: u64,
) -> RunResult {
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    Pipeline::new(machine.clone(), generator).run_reference(instructions)
}

/// [`simulate_reference`] under an on-line governor; the reference
/// counterpart of a governed run.
pub fn simulate_reference_governed<G: Governor>(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    instructions: u64,
    governor: G,
) -> RunResult {
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    Pipeline::new(machine.clone(), generator).run_reference_with_governor(instructions, governor)
}

/// [`simulate`] under an on-line governor: the machine starts from its
/// static configuration and the governor's grid-snapped requests drive the
/// per-domain clocks through the normal DVFS transition model.
pub fn simulate_governed<G: Governor>(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    instructions: u64,
    governor: G,
) -> RunResult {
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    Pipeline::new(machine.clone(), generator).run_with_governor(instructions, governor)
}

/// [`simulate`] with a trace recorder attached: returns the observability
/// record alongside the (byte-identical) result.
pub fn simulate_traced(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    instructions: u64,
    cfg: TraceConfig,
) -> (RunResult, RunTrace) {
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    Pipeline::new(machine.clone(), generator).run_traced(instructions, cfg)
}

/// [`simulate_traced`] driven by an online governor instead of a static
/// schedule; the trace's frequency stairsteps follow the governor's
/// decisions.
pub fn simulate_governed_traced<G: Governor>(
    machine: &MachineConfig,
    profile: &BenchmarkProfile,
    instructions: u64,
    governor: G,
    cfg: TraceConfig,
) -> (RunResult, RunTrace) {
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    Pipeline::new(machine.clone(), generator).run_with_governor_traced(instructions, governor, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::DomainId;
    use crate::machine::ClockingMode;
    use crate::schedule::{FrequencySchedule, ScheduleEntry};
    use mcd_time::{DvfsModel, Femtos, Frequency};
    use mcd_workload::suites;

    const N: u64 = 4_000;

    fn profile(name: &str) -> mcd_workload::BenchmarkProfile {
        suites::by_name(name).expect("known benchmark")
    }

    #[test]
    fn baseline_commits_target() {
        let r = simulate(&MachineConfig::baseline(1), &profile("adpcm"), N);
        assert_eq!(r.committed, N);
        assert!(r.total_time > Femtos::ZERO);
        let ipc = r.ipc();
        assert!(ipc > 0.3 && ipc < 4.0, "IPC {ipc}");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = simulate(&MachineConfig::baseline(9), &profile("gcc"), N);
        let b = simulate(&MachineConfig::baseline(9), &profile("gcc"), N);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
    }

    #[test]
    fn different_seeds_change_timing() {
        let a = simulate(&MachineConfig::baseline(1), &profile("gcc"), N);
        let b = simulate(&MachineConfig::baseline(2), &profile("gcc"), N);
        assert_ne!(a.total_time, b.total_time);
    }

    #[test]
    fn mcd_is_slower_than_baseline() {
        // Pure synchronization overhead: the baseline MCD machine must lose
        // performance, and not catastrophically (paper: < 4 % on average).
        let base = simulate(&MachineConfig::baseline(5), &profile("g721"), N);
        let mcd = simulate(&MachineConfig::baseline_mcd(5), &profile("g721"), N);
        let slowdown = mcd.slowdown_vs(&base);
        assert!(slowdown > 1.0, "MCD should pay sync cost, got {slowdown}");
        assert!(slowdown < 1.25, "MCD overhead implausibly high: {slowdown}");
    }

    #[test]
    fn global_scaling_slows_proportionally() {
        let base = simulate(&MachineConfig::baseline(5), &profile("adpcm"), N);
        let half = simulate(
            &MachineConfig::global(5, Frequency::from_mhz(500)),
            &profile("adpcm"),
            N,
        );
        let slowdown = half.slowdown_vs(&base);
        // adpcm is compute-bound: halving the clock roughly doubles time.
        assert!(slowdown > 1.6 && slowdown < 2.4, "slowdown {slowdown}");
    }

    #[test]
    fn memory_bound_app_scales_sublinearly() {
        let base = simulate(&MachineConfig::baseline(5), &profile("mcf"), N);
        let half = simulate(
            &MachineConfig::global(5, Frequency::from_mhz(500)),
            &profile("mcf"),
            N,
        );
        let slowdown = half.slowdown_vs(&base);
        let compute_base = simulate(&MachineConfig::baseline(5), &profile("adpcm"), N);
        let compute_half = simulate(
            &MachineConfig::global(5, Frequency::from_mhz(500)),
            &profile("adpcm"),
            N,
        );
        assert!(
            slowdown < compute_half.slowdown_vs(&compute_base),
            "memory-bound mcf ({slowdown}) should scale better than compute-bound adpcm"
        );
    }

    #[test]
    fn schedule_scales_fp_domain_down() {
        // Use the Transmeta model: frequency drops right after the PLL
        // re-lock instead of slewing for ~55 us as under XScale.
        let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
            at: Femtos::from_micros(1),
            domain: DomainId::FloatingPoint,
            frequency: Frequency::MIN_SCALED,
        }]);
        let m = MachineConfig::dynamic(5, DvfsModel::Transmeta, sched);
        let r = simulate(&m, &profile("gcc"), 60_000);
        assert_eq!(r.committed, 60_000);
        assert_eq!(r.domain_transitions[DomainId::FloatingPoint.index()], 1);
        // The FP clock should settle far below the integer clock.
        let fp = r.avg_frequency_hz[DomainId::FloatingPoint.index()];
        let int = r.avg_frequency_hz[DomainId::Integer.index()];
        assert!(fp < 0.6 * int, "fp {fp:.3e} vs int {int:.3e}");
    }

    #[test]
    fn scaling_integer_domain_hurts_integer_code() {
        let m0 = MachineConfig::baseline_mcd(5);
        let base = simulate(&m0, &profile("bzip2"), 60_000);
        let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
            at: Femtos::from_micros(1),
            domain: DomainId::Integer,
            frequency: Frequency::MIN_SCALED,
        }]);
        let m = MachineConfig::dynamic(5, DvfsModel::Transmeta, sched);
        let slow = simulate(&m, &profile("bzip2"), 60_000);
        let slowdown = slow.slowdown_vs(&base);
        assert!(slowdown > 1.5, "integer scaling should hurt: {slowdown}");
    }

    #[test]
    fn scaling_fp_domain_barely_hurts_integer_code() {
        let base = simulate(&MachineConfig::baseline_mcd(5), &profile("bzip2"), 60_000);
        let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
            at: Femtos::from_micros(1),
            domain: DomainId::FloatingPoint,
            frequency: Frequency::MIN_SCALED,
        }]);
        let m = MachineConfig::dynamic(5, DvfsModel::Transmeta, sched);
        let slow = simulate(&m, &profile("bzip2"), 60_000);
        let slowdown = slow.slowdown_vs(&base);
        assert!(
            slowdown < 1.05,
            "FP scaling should be ~free for bzip2: {slowdown}"
        );
    }

    #[test]
    fn trace_collection_produces_one_record_per_instruction() {
        let mut m = MachineConfig::baseline_mcd(3);
        m.collect_trace = true;
        let r = simulate(&m, &profile("adpcm"), 1_000);
        let trace = r.trace.as_ref().expect("trace requested");
        assert_eq!(trace.len(), 1_000);
        // Sequence numbers are dense and ordered.
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.seq, i as u64);
            assert!(t.commit >= t.dispatch.end);
        }
        // Memory ops carry address-calculation and memory events.
        assert!(trace.iter().any(|t| t.addr_calc.is_some()));
        let loads_have_mem = trace
            .iter()
            .filter(|t| t.op == mcd_workload::OpClass::Load)
            .all(|t| t.mem_access.is_some());
        assert!(loads_have_mem);
    }

    #[test]
    fn transmeta_relock_makes_reconfiguration_expensive() {
        // One small downward step: under XScale the domain executes through
        // the ramp; under Transmeta it idles 10-20 us re-locking the PLL.
        let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
            at: Femtos::from_micros(1),
            domain: DomainId::Integer,
            frequency: Frequency::from_mhz(900),
        }]);
        let xs = simulate(
            &MachineConfig::dynamic(5, DvfsModel::XScale, sched.clone()),
            &profile("g721"),
            30_000,
        );
        let tm = simulate(
            &MachineConfig::dynamic(5, DvfsModel::Transmeta, sched),
            &profile("g721"),
            30_000,
        );
        assert!(
            tm.total_time > xs.total_time + Femtos::from_micros(5),
            "PLL re-lock idling should cost time: tm {} vs xs {}",
            tm.total_time,
            xs.total_time
        );
        let idle: Femtos = tm.domain_idle.iter().copied().sum();
        assert!(idle > Femtos::from_micros(5));
    }

    #[test]
    fn branch_mispredict_rate_tracks_profile() {
        let r_pred = simulate(&MachineConfig::baseline(5), &profile("adpcm"), N);
        let r_rand = simulate(&MachineConfig::baseline(5), &profile("parser"), N);
        assert!(
            r_rand.mispredict_rate() > r_pred.mispredict_rate(),
            "parser ({:.3}) should mispredict more than adpcm ({:.3})",
            r_rand.mispredict_rate(),
            r_pred.mispredict_rate()
        );
    }

    #[test]
    fn gcc_misses_more_than_g721() {
        let gcc = simulate(&MachineConfig::baseline(5), &profile("gcc"), N);
        let g721 = simulate(&MachineConfig::baseline(5), &profile("g721"), N);
        assert!(
            gcc.l1d.miss_rate() > 0.05,
            "gcc L1D miss {}",
            gcc.l1d.miss_rate()
        );
        assert!(
            g721.l1d.miss_rate() < 0.05,
            "g721 L1D miss {}",
            g721.l1d.miss_rate()
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_populates_trace() {
        let m = MachineConfig::baseline_mcd(7);
        let plain = simulate(&m, &profile("gcc"), N);
        let (traced, trace) = simulate_traced(&m, &profile("gcc"), N, TraceConfig::full());
        assert_eq!(plain.total_time, traced.total_time);
        assert_eq!(plain.ledger, traced.ledger);
        assert_eq!(plain.domain_cycles, traced.domain_cycles);
        assert_eq!(trace.total_time, traced.total_time);
        assert_eq!(trace.domains.len(), DomainId::COUNT);
        // Every domain opens its frequency track at t = 0.
        for dom in &trace.domains {
            let first = dom.freq_steps.first().expect("opening sample");
            assert_eq!(first.at, Femtos::ZERO);
        }
        // An MCD machine realizes cross-domain synchronization stalls.
        assert!(trace.total_sync_penalty_femtos() > 0);
        // Queue occupancy was sampled on ticking edges.
        assert!(trace.domains.iter().any(|d| !d.occupancy.is_empty()));
    }

    #[test]
    fn governed_traced_run_records_requests_and_changes() {
        use crate::governor::AttackDecay;
        let m = MachineConfig::baseline_mcd(7);
        let (r, trace) = simulate_governed_traced(
            &m,
            &profile("bzip2"),
            60_000,
            AttackDecay::paper_like(),
            TraceConfig::full(),
        );
        assert_eq!(r.committed, 60_000);
        let requests: u64 = trace.domains.iter().map(|d| d.counters.freq_requests).sum();
        assert!(requests > 0, "governor should issue frequency requests");
        // The requested changes eventually land on the clocks.
        let changes: u64 = trace.domains.iter().map(|d| d.counters.freq_changes).sum();
        assert!(changes > 0);
    }

    #[test]
    fn single_clock_traced_run_mirrors_events_to_all_domains() {
        let m = MachineConfig::baseline(3);
        let (_, trace) = simulate_traced(&m, &profile("adpcm"), 1_000, TraceConfig::default());
        for dom in &trace.domains {
            assert!(!dom.freq_steps.is_empty());
            assert_eq!(dom.counters.sync_crossings, 0, "single clock never stalls");
        }
    }

    #[test]
    fn single_clock_mode_has_four_equal_domain_cycle_counts() {
        let r = simulate(&MachineConfig::baseline(5), &profile("adpcm"), 1_000);
        let c = r.domain_cycles;
        assert!(c.iter().all(|&x| x == c[0]));
        match MachineConfig::baseline(5).mode {
            ClockingMode::SingleDomain { frequency } => {
                assert_eq!(frequency, Frequency::GHZ)
            }
            _ => panic!("baseline must be single-domain"),
        }
    }
}
