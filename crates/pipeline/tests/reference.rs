//! Differential smoke tests: the naive reference interpreter must produce
//! byte-identical results to the optimized engine. The exhaustive lattice
//! lives in `mcd-check`; these catch divergence at the crate boundary.

use mcd_pipeline::{
    simulate, simulate_reference, simulate_reference_governed, AttackDecay, MachineConfig,
    Pipeline, RunResult,
};
use mcd_workload::{suites, BenchmarkProfile, WorkloadGenerator};

fn profile(name: &str) -> BenchmarkProfile {
    suites::by_name(name).expect("known benchmark")
}

fn bytes(r: &RunResult) -> String {
    serde_json::to_string(r).expect("result serializes")
}

#[test]
fn reference_matches_optimized_single_clock() {
    let mut m = MachineConfig::baseline(11);
    m.warmup_instructions = 0;
    let p = profile("adpcm");
    let fast = simulate(&m, &p, 2_000);
    let slow = simulate_reference(&m, &p, 2_000);
    assert_eq!(bytes(&fast), bytes(&slow));
}

#[test]
fn reference_matches_optimized_mcd() {
    let mut m = MachineConfig::baseline_mcd(7);
    m.warmup_instructions = 0;
    let p = profile("gcc");
    let fast = simulate(&m, &p, 2_000);
    let slow = simulate_reference(&m, &p, 2_000);
    assert_eq!(bytes(&fast), bytes(&slow));
}

#[test]
fn reference_matches_optimized_with_warmup() {
    // Warm-up exercises the process-wide warm cache on the optimized side
    // against the reference's from-scratch rebuild.
    let m = MachineConfig::baseline_mcd(3);
    let p = profile("g721");
    let fast = simulate(&m, &p, 1_500);
    let slow = simulate_reference(&m, &p, 1_500);
    assert_eq!(bytes(&fast), bytes(&slow));
}

#[test]
fn reference_matches_optimized_under_governor() {
    let mut m = MachineConfig::baseline_mcd(5);
    m.warmup_instructions = 0;
    let p = profile("bzip2");
    let gen = WorkloadGenerator::new(p.clone(), m.seed);
    let fast = Pipeline::new(m.clone(), gen).run_with_governor(2_000, AttackDecay::paper_like());
    let slow = simulate_reference_governed(&m, &p, 2_000, AttackDecay::paper_like());
    assert_eq!(bytes(&fast), bytes(&slow));
}

#[test]
fn reference_mode_builder_still_matches_both_paths() {
    // `reference_mode` (fast-forward off, everything else optimized) sits
    // between the two engines; all three must agree.
    let mut m = MachineConfig::baseline_mcd(9);
    m.warmup_instructions = 0;
    let p = profile("mcf");
    let fast = simulate(&m, &p, 1_500);
    let gen = WorkloadGenerator::new(p.clone(), m.seed);
    let mid = Pipeline::new(m.clone(), gen)
        .reference_mode(true)
        .run(1_500);
    let slow = simulate_reference(&m, &p, 1_500);
    assert_eq!(bytes(&fast), bytes(&mid));
    assert_eq!(bytes(&mid), bytes(&slow));
}
