//! End-to-end tests of the on-line attack/decay governor.

use mcd_pipeline::{AttackDecay, DomainId, MachineConfig, Pipeline};
use mcd_time::Femtos;
use mcd_workload::{suites, WorkloadGenerator};

fn run_online(name: &str, n: u64) -> mcd_pipeline::RunResult {
    let machine = MachineConfig::baseline_mcd(5);
    let generator = WorkloadGenerator::new(
        suites::by_name(name).expect("known benchmark"),
        machine.seed,
    );
    Pipeline::new(machine, generator).run_with_governor(n, AttackDecay::paper_like())
}

#[test]
fn governor_scales_idle_fp_domain_for_integer_code() {
    // The XScale ramp takes ~55 µs across the full range, so the window
    // must be several times that for the average frequency to show it.
    let run = run_online("bzip2", 200_000);
    assert_eq!(run.committed, 200_000);
    let fp = run.avg_frequency_hz[DomainId::FloatingPoint.index()];
    let int = run.avg_frequency_hz[DomainId::Integer.index()];
    assert!(
        fp < 0.7 * int,
        "idle FP should be scaled on-line: fp {fp:.3e} vs int {int:.3e}"
    );
    // The front end is untouched by the governor.
    let fe = run.avg_frequency_hz[DomainId::FrontEnd.index()];
    assert!((fe - 1e9).abs() < 2e7, "front end stays at 1 GHz: {fe:.3e}");
}

#[test]
fn governor_keeps_degradation_bounded() {
    let machine = MachineConfig::baseline_mcd(5);
    let profile = suites::by_name("gcc").expect("known benchmark");
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    let static_run = Pipeline::new(machine.clone(), generator).run(60_000);
    let online = run_online("gcc", 60_000);
    let deg = online.total_time.as_femtos() as f64 / static_run.total_time.as_femtos() as f64 - 1.0;
    assert!(
        deg < 0.25,
        "on-line control degradation out of hand: {:.3}",
        deg
    );
    assert!(
        online.domain_transitions.iter().sum::<u64>() > 3,
        "governor actually acted"
    );
}

#[test]
fn governor_saves_energy_versus_static_mcd() {
    use mcd_pipeline::Unit;
    let machine = MachineConfig::baseline_mcd(5);
    let profile = suites::by_name("treeadd").expect("known benchmark");
    let generator = WorkloadGenerator::new(profile, machine.seed);
    let static_run = Pipeline::new(machine, generator).run(60_000);
    let online = run_online("treeadd", 60_000);
    // Cheap proxy for energy: V²-weighted cycles and accesses must fall.
    let static_v2: f64 = static_run.domain_v2_cycles.iter().sum();
    let online_v2: f64 = online.domain_v2_cycles.iter().sum();
    assert!(
        online_v2 < 0.95 * static_v2,
        "on-line scaling should cut V²·cycles: {online_v2:.3e} vs {static_v2:.3e}"
    );
    let u = Unit::IqInt;
    assert!(online.ledger.weighted_v2(u) <= static_run.ledger.weighted_v2(u) + 1.0);
}

#[test]
fn governor_reacts_to_phase_changes() {
    // art alternates FP-busy and FP-idle phases: the on-line controller
    // must produce multiple FP transitions, not a single settling step.
    let run = run_online("art", 120_000);
    let fp_transitions = run.domain_transitions[DomainId::FloatingPoint.index()];
    assert!(
        fp_transitions >= 4,
        "expected repeated FP adaptation, got {fp_transitions}"
    );
    assert!(run.total_time > Femtos::from_micros(50));
}
