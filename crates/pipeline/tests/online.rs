//! End-to-end tests of the on-line governors.

use mcd_pipeline::{
    AttackDecay, ControlSample, DomainId, Governor, MachineConfig, Pipeline, PolicySpec, QueuePi,
};
use mcd_time::{Femtos, Frequency};
use mcd_workload::{suites, WorkloadGenerator};

fn run_online(name: &str, n: u64) -> mcd_pipeline::RunResult {
    let machine = MachineConfig::baseline_mcd(5);
    let generator = WorkloadGenerator::new(
        suites::by_name(name).expect("known benchmark"),
        machine.seed,
    );
    Pipeline::new(machine, generator).run_with_governor(n, AttackDecay::paper_like())
}

#[test]
fn governor_scales_idle_fp_domain_for_integer_code() {
    // The XScale ramp takes ~55 µs across the full range, so the window
    // must be several times that for the average frequency to show it.
    let run = run_online("bzip2", 200_000);
    assert_eq!(run.committed, 200_000);
    let fp = run.avg_frequency_hz[DomainId::FloatingPoint.index()];
    let int = run.avg_frequency_hz[DomainId::Integer.index()];
    assert!(
        fp < 0.7 * int,
        "idle FP should be scaled on-line: fp {fp:.3e} vs int {int:.3e}"
    );
    // The front end is untouched by the governor.
    let fe = run.avg_frequency_hz[DomainId::FrontEnd.index()];
    assert!((fe - 1e9).abs() < 2e7, "front end stays at 1 GHz: {fe:.3e}");
}

#[test]
fn governor_keeps_degradation_bounded() {
    let machine = MachineConfig::baseline_mcd(5);
    let profile = suites::by_name("gcc").expect("known benchmark");
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    let static_run = Pipeline::new(machine.clone(), generator).run(60_000);
    let online = run_online("gcc", 60_000);
    let deg = online.total_time.as_femtos() as f64 / static_run.total_time.as_femtos() as f64 - 1.0;
    assert!(
        deg < 0.25,
        "on-line control degradation out of hand: {:.3}",
        deg
    );
    assert!(
        online.domain_transitions.iter().sum::<u64>() > 3,
        "governor actually acted"
    );
}

#[test]
fn governor_saves_energy_versus_static_mcd() {
    use mcd_pipeline::Unit;
    let machine = MachineConfig::baseline_mcd(5);
    let profile = suites::by_name("treeadd").expect("known benchmark");
    let generator = WorkloadGenerator::new(profile, machine.seed);
    let static_run = Pipeline::new(machine, generator).run(60_000);
    let online = run_online("treeadd", 60_000);
    // Cheap proxy for energy: V²-weighted cycles and accesses must fall.
    let static_v2: f64 = static_run.domain_v2_cycles.iter().sum();
    let online_v2: f64 = online.domain_v2_cycles.iter().sum();
    assert!(
        online_v2 < 0.95 * static_v2,
        "on-line scaling should cut V²·cycles: {online_v2:.3e} vs {static_v2:.3e}"
    );
    let u = Unit::IqInt;
    assert!(online.ledger.weighted_v2(u) <= static_run.ledger.weighted_v2(u) + 1.0);
}

fn interval_sample(governor: &dyn Governor, util: [f64; 4], issued: [u64; 4]) -> ControlSample {
    ControlSample {
        start: Femtos::ZERO,
        end: governor.interval(),
        queue_utilization: util,
        issued,
        committed: 1_000,
    }
}

#[test]
fn saturated_domains_at_the_ceiling_stay_silent() {
    // Both registry policies start with every domain at (and last-requested
    // at) 1 GHz. A queue that stays saturated keeps pushing the continuous
    // target upward, but the clamp pins it at the ceiling — so the snapped
    // grid point never changes and the governor must not re-request the
    // frequency the hardware is already running at.
    let policies: [Box<dyn Governor>; 2] = [
        Box::new(AttackDecay::paper_like()),
        Box::new(QueuePi::default_tuning()),
    ];
    for mut governor in policies {
        for step in 0..500 {
            // Constant deep saturation: the attack/decay climb path and the
            // PI's positive error both keep asking for more than 1 GHz.
            let s = interval_sample(governor.as_ref(), [0.0, 0.98, 0.98, 0.98], [9, 9, 9, 9]);
            let decision = governor.decide(&s);
            assert_eq!(
                decision,
                [None; DomainId::COUNT],
                "ceiling-pinned domain re-requested a frequency at step {step}"
            );
        }
    }
}

#[test]
fn idle_domains_at_the_floor_request_it_exactly_once() {
    // The other saturation edge: a dead domain is floored on the first
    // interval, and every later idle interval snaps to the same 250 MHz
    // grid point — which must not be re-emitted.
    for spec in ["attack-decay", "queue-pi"] {
        let mut governor = PolicySpec::parse(spec)
            .expect("registry policy")
            .build()
            .expect("registry policy builds");
        let mut floor_requests = [0usize; DomainId::COUNT];
        for _ in 0..300 {
            let s = interval_sample(governor.as_ref(), [0.0; 4], [0; 4]);
            for (i, f) in governor.decide(&s).iter().enumerate() {
                if let Some(f) = f {
                    assert_eq!(*f, Frequency::MIN_SCALED, "{spec}: non-floor request");
                    floor_requests[i] += 1;
                }
            }
        }
        for d in &DomainId::ALL[1..] {
            assert_eq!(
                floor_requests[d.index()],
                1,
                "{spec}: the floor must be requested exactly once, then held"
            );
        }
        assert_eq!(floor_requests[DomainId::FrontEnd.index()], 0);
    }
}

#[test]
fn governor_reacts_to_phase_changes() {
    // art alternates FP-busy and FP-idle phases: the on-line controller
    // must produce multiple FP transitions, not a single settling step.
    let run = run_online("art", 120_000);
    let fp_transitions = run.domain_transitions[DomainId::FloatingPoint.index()];
    assert!(
        fp_transitions >= 4,
        "expected repeated FP adaptation, got {fp_transitions}"
    );
    assert!(run.total_time > Femtos::from_micros(50));
}
