//! Behavioral tests of the pipeline against hand-reasoned expectations.

use mcd_pipeline::{
    simulate, ClockingMode, DomainId, FrequencySchedule, MachineConfig, Pipeline, PipelineConfig,
    ScheduleEntry,
};
use mcd_time::{DvfsModel, Femtos, Frequency, JitterModel, SyncParams};
use mcd_workload::{suites, WorkloadGenerator};

fn quiet_baseline(seed: u64) -> MachineConfig {
    let mut m = MachineConfig::baseline(seed);
    m.jitter = JitterModel::disabled();
    m
}

#[test]
fn ipc_never_exceeds_decode_width() {
    for name in suites::names() {
        let profile = suites::by_name(name).expect("known benchmark");
        let run = simulate(&quiet_baseline(1), &profile, 10_000);
        assert!(
            run.ipc() <= 4.0,
            "{name}: IPC {:.2} exceeds the fetch/decode width",
            run.ipc()
        );
        assert!(
            run.ipc() > 0.05,
            "{name}: IPC {:.2} implausibly low",
            run.ipc()
        );
    }
}

#[test]
fn narrower_machine_is_slower() {
    let profile = suites::by_name("g721").expect("known benchmark");
    let wide = simulate(&quiet_baseline(3), &profile, 20_000);
    let mut narrow_cfg = quiet_baseline(3);
    narrow_cfg.pipeline = PipelineConfig::tiny();
    let narrow = simulate(&narrow_cfg, &profile, 20_000);
    assert!(
        narrow.total_time > wide.total_time,
        "tiny machine ({}) should lose to the 21264 ({})",
        narrow.total_time,
        wide.total_time
    );
}

#[test]
fn bigger_rob_does_not_hurt() {
    let profile = suites::by_name("mcf").expect("known benchmark");
    let base = simulate(&quiet_baseline(3), &profile, 15_000);
    let mut big_cfg = quiet_baseline(3);
    big_cfg.pipeline.rob_size = 160;
    let big = simulate(&big_cfg, &profile, 15_000);
    // More reordering window can only help a memory-bound code.
    assert!(big.total_time <= base.total_time + Femtos::from_micros(1));
}

#[test]
fn memory_latency_matters_for_memory_bound_code() {
    let profile = suites::by_name("mcf").expect("known benchmark");
    let fast = simulate(&quiet_baseline(3), &profile, 15_000);
    let mut slow_cfg = quiet_baseline(3);
    slow_cfg.pipeline.mem_latency = Femtos::from_nanos(200);
    let slow = simulate(&slow_cfg, &profile, 15_000);
    assert!(
        slow.total_time.as_femtos() as f64 > 1.2 * fast.total_time.as_femtos() as f64,
        "mcf must feel a 2.5x memory latency increase: {} vs {}",
        slow.total_time,
        fast.total_time
    );
}

#[test]
fn mispredict_penalty_shows_up_in_runtime() {
    let profile = suites::by_name("parser").expect("known benchmark");
    let short = simulate(&quiet_baseline(3), &profile, 15_000);
    let mut long_cfg = quiet_baseline(3);
    long_cfg.pipeline.mispredict_penalty = 30;
    let long = simulate(&long_cfg, &profile, 15_000);
    assert!(
        long.total_time > short.total_time,
        "a 30-cycle redirect penalty must cost time on a branchy code"
    );
}

#[test]
fn schedule_entries_beyond_the_run_are_harmless() {
    let profile = suites::by_name("epic").expect("known benchmark");
    let late = FrequencySchedule::from_entries(vec![ScheduleEntry {
        at: Femtos::from_millis(100), // far beyond the simulated window
        domain: DomainId::Integer,
        frequency: Frequency::MIN_SCALED,
    }]);
    let with = simulate(
        &MachineConfig::dynamic(3, DvfsModel::XScale, late),
        &profile,
        5_000,
    );
    let without = simulate(
        &MachineConfig::dynamic(3, DvfsModel::XScale, FrequencySchedule::new()),
        &profile,
        5_000,
    );
    assert_eq!(with.total_time, without.total_time);
    assert_eq!(with.domain_transitions, [0; 4]);
}

#[test]
fn repeated_requests_for_the_same_frequency_are_noops_once_settled() {
    // A re-request issued mid-ramp counts as a retarget, but a re-request
    // after the transition has settled is a no-op. The 1 GHz → 500 MHz
    // XScale ramp takes ~36 µs, so the second entry at 50 µs finds the
    // domain already at the target.
    let profile = suites::by_name("mst").expect("known benchmark");
    let schedule = FrequencySchedule::from_entries(vec![
        ScheduleEntry {
            at: Femtos::from_micros(1),
            domain: DomainId::FloatingPoint,
            frequency: Frequency::from_mhz(500),
        },
        ScheduleEntry {
            at: Femtos::from_micros(50),
            domain: DomainId::FloatingPoint,
            frequency: Frequency::from_mhz(500),
        },
    ]);
    let run = simulate(
        &MachineConfig::dynamic(3, DvfsModel::XScale, schedule),
        &profile,
        60_000,
    );
    assert!(
        run.total_time > Femtos::from_micros(55),
        "run covers both entries"
    );
    assert_eq!(run.domain_transitions[DomainId::FloatingPoint.index()], 1);
}

#[test]
fn activity_counts_scale_with_instruction_count() {
    use mcd_pipeline::Unit;
    let profile = suites::by_name("bzip2").expect("known benchmark");
    let small = simulate(&quiet_baseline(3), &profile, 5_000);
    let large = simulate(&quiet_baseline(3), &profile, 20_000);
    for unit in [Unit::Rename, Unit::Rob, Unit::ICache] {
        let ratio = large.ledger.count(unit) as f64 / small.ledger.count(unit).max(1) as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "{unit:?} activity should scale ~4x with instructions, got {ratio:.2}"
        );
    }
}

#[test]
fn every_committed_instruction_renames_exactly_once() {
    use mcd_pipeline::Unit;
    let profile = suites::by_name("adpcm").expect("known benchmark");
    let run = simulate(&quiet_baseline(3), &profile, 8_000);
    // Every committed instruction renamed once; a handful of dispatched but
    // not-yet-committed instructions may remain in flight at run end.
    let renames = run.ledger.count(Unit::Rename);
    assert!(renames >= 8_000, "renames {renames}");
    assert!(
        renames <= 8_000 + 80,
        "at most one ROB of in-flight work: {renames}"
    );
}

#[test]
fn loads_hit_the_dcache_stores_write_at_commit() {
    use mcd_pipeline::Unit;
    let profile = suites::by_name("treeadd").expect("known benchmark");
    let run = simulate(&quiet_baseline(3), &profile, 20_000);
    // D-cache accesses = load issues + store commits, minus forwarded loads.
    let mem_ops = run.trace.as_ref().map(|t| t.len()).unwrap_or(0);
    assert_eq!(mem_ops, 0, "trace off by default");
    let dcache = run.ledger.count(Unit::Dcache);
    assert!(dcache > 4_000, "treeadd is memory-rich: {dcache} accesses");
    assert_eq!(dcache, run.l1d.accesses, "ledger and cache stats agree");
}

#[test]
fn pipeline_can_be_driven_directly() {
    let machine = MachineConfig::baseline(11);
    let generator = WorkloadGenerator::new(
        suites::by_name("tsp").expect("known benchmark"),
        machine.seed,
    );
    let run = Pipeline::new(machine, generator).run(3_000);
    assert_eq!(run.committed, 3_000);
}

#[test]
fn single_domain_mode_reports_uniform_frequencies() {
    let profile = suites::by_name("power").expect("known benchmark");
    let m = MachineConfig::global(3, Frequency::from_mhz(600));
    assert!(matches!(m.mode, ClockingMode::SingleDomain { .. }));
    let run = simulate(&m, &profile, 5_000);
    for d in DomainId::ALL {
        let f = run.avg_frequency_hz[d.index()];
        assert!((f - 600e6).abs() / 600e6 < 0.02, "{d} at {f:.3e}");
    }
}

#[test]
fn free_sync_beats_paper_sync() {
    let profile = suites::by_name("adpcm").expect("known benchmark");
    let mut free_cfg = MachineConfig::baseline_mcd(3);
    free_cfg.sync = SyncParams::free();
    free_cfg.jitter = JitterModel::disabled();
    let mut paper_cfg = MachineConfig::baseline_mcd(3);
    paper_cfg.jitter = JitterModel::disabled();
    let free = simulate(&free_cfg, &profile, 15_000);
    let paper = simulate(&paper_cfg, &profile, 15_000);
    assert!(free.total_time <= paper.total_time);
}
