//! Runtime invariant checker tests (feature `invariants`).

#![cfg(feature = "invariants")]

use mcd_pipeline::{simulate, AttackDecay, InvariantChecker, MachineConfig, Pipeline, RunResult};
use mcd_workload::{suites, BenchmarkProfile, WorkloadGenerator};

fn profile(name: &str) -> BenchmarkProfile {
    suites::by_name(name).expect("known benchmark")
}

fn bytes(r: &RunResult) -> String {
    serde_json::to_string(r).expect("result serializes")
}

fn pipeline(m: &MachineConfig, p: &BenchmarkProfile) -> Pipeline {
    let gen = WorkloadGenerator::new(p.clone(), m.seed);
    Pipeline::new(m.clone(), gen)
}

#[test]
fn clean_mcd_run_upholds_every_invariant() {
    let m = MachineConfig::baseline_mcd(7);
    let p = profile("gcc");
    let (r, report) = pipeline(&m, &p).run_checked(10_000);
    assert_eq!(r.committed, 10_000);
    assert!(report.is_clean(), "{}", report.summary());
    assert!(report.checked_edges > 10_000, "audit covered the run");
    // Steady-state edges qualified for the jitter bound on every clock, and
    // the clean breach rate sits far under the 5 % bound.
    for s in &report.clocks {
        assert!(s.qualifying > 200, "qualifying edges {}", s.qualifying);
        assert!(s.breach_rate() < 0.05, "breach rate {}", s.breach_rate());
    }
}

#[test]
fn clean_governed_run_upholds_every_invariant() {
    // AttackDecay snaps its requests to the 32-point paper grid, so the
    // on-grid check must stay quiet too.
    let m = MachineConfig::baseline_mcd(5);
    let p = profile("bzip2");
    let (r, report) = pipeline(&m, &p).run_with_governor_checked(20_000, AttackDecay::paper_like());
    assert_eq!(r.committed, 20_000);
    assert!(report.is_clean(), "{}", report.summary());
}

#[test]
fn checked_run_results_are_byte_identical_to_unchecked() {
    let m = MachineConfig::baseline_mcd(3);
    let p = profile("adpcm");
    let plain = simulate(&m, &p, 5_000);
    let checker = InvariantChecker::new(m.vf, m.sync);
    let (checked, report) = pipeline(&m, &p).with_invariants(checker).run_checked(5_000);
    assert!(report.is_clean(), "{}", report.summary());
    assert_eq!(bytes(&plain), bytes(&checked));
}

#[test]
fn single_clock_run_is_audited_and_clean() {
    let m = MachineConfig::baseline(9);
    let p = profile("g721");
    let (_, report) = pipeline(&m, &p).run_checked(5_000);
    assert!(report.is_clean(), "{}", report.summary());
    assert_eq!(report.clocks.len(), 1, "one physical clock audited");
}
