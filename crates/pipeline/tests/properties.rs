//! Property-based tests for pipeline-level invariants.

use proptest::prelude::*;

use mcd_pipeline::{
    simulate, ActivityLedger, AttackDecay, DomainId, FrequencySchedule, MachineConfig, Pipeline,
    ScheduleEntry, Unit,
};
use mcd_time::{DvfsModel, Femtos, Frequency};
use mcd_workload::{suites, WorkloadGenerator};

/// Benchmarks with distinct domain-idleness shapes: integer-heavy (FP idle),
/// FP-heavy, memory-bound, and compute-bound — each exercising different
/// fast-forward windows.
const FF_BENCHES: [&str; 4] = ["gcc", "swim", "mcf", "adpcm"];

/// Runs `machine` twice — the production loop (with idle-cycle
/// fast-forward) and the naive edge-by-edge reference — and returns both
/// results serialized, for byte-level comparison.
fn run_fast_and_reference(machine: &MachineConfig, bench: &str, n: u64) -> (String, String) {
    let profile = suites::by_name(bench).expect("known benchmark");
    let fast = Pipeline::new(
        machine.clone(),
        WorkloadGenerator::new(profile.clone(), machine.seed),
    )
    .run(n);
    let reference = Pipeline::new(
        machine.clone(),
        WorkloadGenerator::new(profile, machine.seed),
    )
    .reference_mode(true)
    .run(n);
    (
        serde_json::to_string(&fast).expect("result serializes"),
        serde_json::to_string(&reference).expect("result serializes"),
    )
}

fn arbitrary_schedule() -> impl Strategy<Value = FrequencySchedule> {
    proptest::collection::vec((0u64..200, 1usize..4, 250u64..1000), 0..6).prop_map(|entries| {
        FrequencySchedule::from_entries(
            entries
                .into_iter()
                .map(|(us, d, mhz)| ScheduleEntry {
                    at: Femtos::from_micros(us),
                    domain: DomainId::ALL[d],
                    frequency: Frequency::from_mhz(mhz),
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_schedule_still_commits_every_instruction(
        schedule in arbitrary_schedule(),
        model_is_xscale in any::<bool>(),
    ) {
        // Whatever reconfiguration sequence is thrown at the machine, the
        // pipeline must make forward progress and commit the exact target.
        let model = if model_is_xscale { DvfsModel::XScale } else { DvfsModel::Transmeta };
        let machine = MachineConfig::dynamic(1, model, schedule);
        let profile = suites::by_name("epic").expect("known benchmark");
        let run = simulate(&machine, &profile, 5_000);
        prop_assert_eq!(run.committed, 5_000);
        prop_assert!(run.total_time > Femtos::ZERO);
        // While the clock runs, the cycle rate stays inside the operating
        // region. Idle time is excluded: Transmeta PLL re-locks stop the
        // domain clock entirely, so a re-lock-heavy schedule can pull the
        // wall-clock average frequency below the region's floor without any
        // set point ever leaving it.
        for d in DomainId::ALL {
            let busy = (run.total_time.as_secs_f64()
                - run.domain_idle[d.index()].as_secs_f64())
            .max(1e-18);
            let f = run.domain_cycles[d.index()] as f64 / busy;
            prop_assert!(f > 200e6 && f < 1.2e9, "{d} at {f:.3e} Hz of busy time");
        }
    }

    #[test]
    fn schedule_json_round_trips(schedule in arbitrary_schedule()) {
        let json = schedule.to_json().expect("serializable");
        let back = FrequencySchedule::from_json(&json).expect("parses");
        prop_assert_eq!(schedule, back);
    }

    #[test]
    fn fast_forward_is_byte_identical_to_reference(
        schedule in arbitrary_schedule(),
        model_is_xscale in any::<bool>(),
        seed in 0u64..1_000,
        bench_idx in 0usize..FF_BENCHES.len(),
        trace in any::<bool>(),
    ) {
        // The idle-cycle fast-forward must be invisible: any seed, DVFS
        // model and reconfiguration schedule must produce a RunResult
        // byte-identical to the naive edge-by-edge loop's.
        let model = if model_is_xscale { DvfsModel::XScale } else { DvfsModel::Transmeta };
        let mut machine = MachineConfig::dynamic(seed, model, schedule);
        machine.collect_trace = trace;
        let (fast, reference) = run_fast_and_reference(&machine, FF_BENCHES[bench_idx], 4_000);
        prop_assert_eq!(fast, reference);
    }

    #[test]
    fn fast_forward_is_byte_identical_under_a_governor(
        seed in 0u64..1_000,
        bench_idx in 0usize..FF_BENCHES.len(),
    ) {
        // Same invariant with an on-line governor in the loop: control
        // decisions must land on exactly the same edges in both modes.
        let machine = MachineConfig::baseline_mcd(seed);
        let profile = suites::by_name(FF_BENCHES[bench_idx]).expect("known benchmark");
        let n = 4_000;
        let fast = Pipeline::new(
            machine.clone(),
            WorkloadGenerator::new(profile.clone(), machine.seed),
        )
        .run_with_governor(n, AttackDecay::paper_like());
        let reference = Pipeline::new(
            machine.clone(),
            WorkloadGenerator::new(profile, machine.seed),
        )
        .reference_mode(true)
        .run_with_governor(n, AttackDecay::paper_like());
        let fast = serde_json::to_string(&fast).expect("result serializes");
        let reference = serde_json::to_string(&reference).expect("result serializes");
        prop_assert_eq!(fast, reference);
    }

    #[test]
    fn ledger_merge_is_commutative_and_additive(
        a in proptest::collection::vec((0usize..Unit::COUNT, 0.5f64..1.3), 0..50),
        b in proptest::collection::vec((0usize..Unit::COUNT, 0.5f64..1.3), 0..50),
    ) {
        let build = |entries: &[(usize, f64)]| {
            let mut ledger = ActivityLedger::new();
            for (u, v) in entries {
                ledger.record(Unit::ALL[*u], *v);
            }
            ledger
        };
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        for u in Unit::ALL {
            prop_assert_eq!(ab.count(u), ba.count(u));
            prop_assert!((ab.weighted_v2(u) - ba.weighted_v2(u)).abs() < 1e-9);
        }
    }
}
