//! The differential suite: reference vs. optimized byte-equality across
//! the configuration lattice, plus a deterministic fuzz smoke.

use mcd_check::{fuzz, lattice, run_differential, CheckCase, DiffOutcome, FuzzConfig};

#[test]
fn lattice_matches_reference_everywhere() {
    for case in lattice() {
        let out = run_differential(&case).expect("lattice case is valid");
        assert!(
            out.is_pass(),
            "case {case:?} failed the differential oracle: {out:?}"
        );
    }
}

#[test]
fn lattice_covers_the_required_grid() {
    // The suite must prove equality on at least three benchmark profiles,
    // each both ungoverned and under the attack/decay governor.
    let cases = lattice();
    let covered = |bench: &str, gov: &str| {
        cases
            .iter()
            .any(|c| c.benchmark == bench && c.governor == gov)
    };
    let mut governed_benchmarks = 0;
    for bench in ["adpcm", "gcc", "mcf"] {
        assert!(covered(bench, "none"), "{bench} missing ungoverned case");
        if covered(bench, "attack-decay") {
            governed_benchmarks += 1;
        }
    }
    assert!(
        governed_benchmarks >= 3,
        "need >= 3 benchmarks under the governor"
    );
}

#[test]
fn fuzz_smoke_is_deterministic_and_clean() {
    let dir = std::env::temp_dir().join(format!("mcd-check-fuzz-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FuzzConfig {
        seed: 0xC0FFEE,
        cases: 12,
        out_dir: dir.clone(),
    };
    let a = fuzz(&cfg).expect("fuzz runs");
    assert!(a.is_clean(), "seeded fuzz found failures: {:?}", a.failures);
    let b = fuzz(&cfg).expect("fuzz runs again");
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.chaos_cases, b.chaos_cases);
    assert!(b.is_clean());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn scaled_governed_tiny_case_matches() {
    // The nastiest single corner: tiny queues saturate, the governor
    // rescales mid-run, and the 500 MHz grid point doubles every period.
    let case = CheckCase {
        benchmark: "mcf".into(),
        seed: 23,
        instructions: 1_200,
        pipeline: "tiny".into(),
        mode: "mcd".into(),
        mhz: 500,
        governor: "attack-decay".into(),
        warmup: 0,
        chaos: "none".into(),
    };
    let out = run_differential(&case).expect("valid case");
    assert!(matches!(out, DiffOutcome::Match), "{out:?}");
}
