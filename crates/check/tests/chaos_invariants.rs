//! Acceptance test for the fault-injection path: a known-bad run (jitter
//! sized to defeat the §2.2 synchronization window) must be caught by the
//! runtime invariant checker, shrunk to a minimal repro, published
//! atomically, and replayable.

#![cfg(all(feature = "invariants", feature = "chaos"))]

use mcd_check::fuzz::{check_case, replay_file, shrink, FailureKind};
use mcd_check::{repro, CheckCase};

fn breaching_case() -> CheckCase {
    // Deliberately non-minimal: the shrinker has work to do.
    CheckCase {
        benchmark: "gcc".into(),
        seed: 77,
        instructions: 2_400,
        pipeline: "tiny".into(),
        mode: "mcd".into(),
        mhz: 500,
        governor: "none".into(),
        warmup: 0,
        chaos: "ts-breach".into(),
    }
}

/// Flips the expectation: a chaos case "fails" our checks only when the
/// detector MISSES it, so for this test we want `check_case` to pass
/// (i.e. the breach was flagged). Build a direct detection probe instead.
fn breach_is_flagged(case: &CheckCase) -> bool {
    // check_case returns None when the chaos case was properly flagged.
    check_case(case).is_none()
}

#[test]
fn ts_breach_is_caught_by_the_invariant_checker() {
    let case = breaching_case();
    assert!(
        breach_is_flagged(&case),
        "the T_s-breaching jitter model must trip the breach-rate bound"
    );
    // And the checker is not crying wolf: the same configuration without
    // the fault comes back clean.
    let mut clean = case;
    clean.chaos = "none".into();
    assert!(check_case(&clean).is_none(), "clean twin must pass");
}

#[test]
fn missed_violation_shrinks_to_a_tiny_replayable_repro() {
    // Simulate the fuzzer's handling of a detector regression by shrinking
    // the *case itself* down (chaos cases shrink like any other: the
    // shrunk case must still trip the detector). We shrink under the
    // predicate "still flagged" by reusing the fuzzer's machinery on an
    // inverted-kind probe: publish the minimal flagged case as the repro a
    // real MissedViolation failure would carry.
    let case = breaching_case();
    // Manual greedy shrink mirroring fuzz::shrink but with the detection
    // predicate (the public shrink() shrinks failing cases; here the
    // "interesting" property is that the breach stays detected).
    let d = CheckCase::default();
    let mut best = case;
    loop {
        let mut improved = false;
        while best.instructions > 200 {
            let mut cand = best.clone();
            cand.instructions = (cand.instructions / 2).max(200);
            if breach_is_flagged(&cand) {
                best = cand;
                improved = true;
            } else {
                break;
            }
        }
        for reset in [
            |c: &mut CheckCase, d: &CheckCase| c.pipeline = d.pipeline.clone(),
            |c: &mut CheckCase, d: &CheckCase| c.mode = d.mode.clone(),
            |c: &mut CheckCase, d: &CheckCase| c.mhz = d.mhz,
            |c: &mut CheckCase, d: &CheckCase| c.benchmark = d.benchmark.clone(),
            |c: &mut CheckCase, d: &CheckCase| c.seed = d.seed,
        ] {
            let mut cand = best.clone();
            reset(&mut cand, &d);
            if cand != best && breach_is_flagged(&cand) {
                best = cand;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    assert!(breach_is_flagged(&best));
    // The minimal case still names the fault; everything else collapsed to
    // defaults, so the published repro is tiny.
    assert_eq!(best.chaos, "ts-breach");
    let dir = std::env::temp_dir().join(format!("mcd-check-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = repro::write(&dir, &best, "invariant").expect("publishes");
    let text = std::fs::read_to_string(&path).expect("readable");
    assert!(
        text.lines().count() <= 10,
        "repro must be at most 10 lines:\n{text}"
    );
    // Replay: the published file still trips nothing in check_case terms
    // (a properly-detected chaos case is a pass), proving the repro file
    // round-trips into the same verdict.
    let replayed = replay_file(&path).expect("replayable");
    assert!(
        replayed.is_none(),
        "replay must re-detect the breach (pass): {replayed:?}"
    );
    let (parsed, failure) = repro::from_json(&text).expect("parses");
    assert_eq!(parsed, best);
    assert_eq!(failure, "invariant");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn shrinker_reduces_a_truly_failing_case_deterministically() {
    // Exercise the public shrink() entry on a synthetic InvalidCase
    // failure (stable across feature sets): an unknown governor fails to
    // build no matter what else shrinks away.
    let mut case = breaching_case();
    case.chaos = "none".into();
    case.governor = "warp-speed".into();
    let verdict = check_case(&case).expect("invalid governor must fail");
    assert_eq!(verdict.0, FailureKind::InvalidCase);
    let shrunk = shrink(case, FailureKind::InvalidCase);
    assert_eq!(shrunk.governor, "warp-speed", "the culprit field survives");
    let d = CheckCase::default();
    assert_eq!(shrunk.benchmark, d.benchmark);
    assert_eq!(shrunk.pipeline, d.pipeline);
    assert_eq!(shrunk.mode, d.mode);
    assert_eq!(shrunk.seed, d.seed);
    let json = repro::to_json(&shrunk, "invalid-case");
    assert!(json.lines().count() <= 10, "{json}");
}
