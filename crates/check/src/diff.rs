//! The differential oracle: optimized engine vs. reference interpreter.

use mcd_pipeline::{Pipeline, RunResult};
use mcd_workload::{suites, WorkloadGenerator};

use crate::case::CheckCase;
use crate::post;

/// Outcome of one differential run.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOutcome {
    /// The two engines produced byte-identical results (and the energy
    /// post-checks passed).
    Match,
    /// The serialized results differ.
    Mismatch {
        /// Canonical JSON of the optimized engine's result.
        optimized: String,
        /// Canonical JSON of the reference interpreter's result.
        reference: String,
    },
    /// Results matched but the energy breakdown violated a post-run
    /// invariant.
    EnergyViolation {
        /// Human-readable violations.
        problems: Vec<String>,
    },
}

impl DiffOutcome {
    /// Whether the case passed every differential-layer check.
    pub fn is_pass(&self) -> bool {
        matches!(self, DiffOutcome::Match)
    }
}

fn canonical(r: &RunResult) -> String {
    serde_json::to_string(r).expect("run result serializes")
}

/// Runs `case` on both engines and compares the serialized results, then
/// applies the post-run energy checks to the (matching) result.
///
/// # Errors
///
/// Returns a description when the case itself is invalid (unknown
/// benchmark or field value, missing feature).
pub fn run_differential(case: &CheckCase) -> Result<DiffOutcome, String> {
    let profile = suites::by_name(&case.benchmark)
        .ok_or_else(|| format!("unknown benchmark {:?}", case.benchmark))?;
    let machine = case.machine()?;
    let build = || {
        let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
        Pipeline::new(machine.clone(), generator)
    };
    let (fast, slow) = match case.policy()? {
        Some(policy) => {
            let governor = |policy: &mcd_pipeline::PolicySpec| {
                policy.build().expect("policy() already validated the spec")
            };
            (
                build().run_with_governor(case.instructions, governor(&policy)),
                build().run_reference_with_governor(case.instructions, governor(&policy)),
            )
        }
        None => (
            build().run(case.instructions),
            build().run_reference(case.instructions),
        ),
    };
    let optimized = canonical(&fast);
    let reference = canonical(&slow);
    if optimized != reference {
        return Ok(DiffOutcome::Mismatch {
            optimized,
            reference,
        });
    }
    let problems = post::check_energy(&fast);
    if !problems.is_empty() {
        return Ok(DiffOutcome::EnergyViolation { problems });
    }
    Ok(DiffOutcome::Match)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_case_matches() {
        let out = run_differential(&CheckCase::default()).expect("valid case");
        assert!(out.is_pass(), "{out:?}");
    }

    #[test]
    fn governed_cases_match_for_every_registry_policy() {
        for governor in ["attack-decay", "queue-pi"] {
            let c = CheckCase {
                governor: governor.into(),
                instructions: 600,
                ..CheckCase::default()
            };
            let out = run_differential(&c).expect("valid case");
            assert!(out.is_pass(), "{governor}: {out:?}");
        }
    }

    #[test]
    fn invalid_benchmark_is_an_error_not_an_outcome() {
        let c = CheckCase {
            benchmark: "no-such-benchmark".into(),
            ..CheckCase::default()
        };
        assert!(run_differential(&c).is_err());
    }
}
