//! One self-contained check configuration.

use serde::{Deserialize, Serialize};

use mcd_pipeline::{ClockingMode, MachineConfig, PipelineConfig, PolicySpec};
use mcd_time::Frequency;

/// A flat, serializable description of one simulation under test. Every
/// field has a [`Default`] so repro files can omit everything that does
/// not matter for the failure (see [`crate::repro`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckCase {
    /// Benchmark profile name (see `mcd_workload::suites`).
    pub benchmark: String,
    /// Machine seed (workload, jitter, PLL lock times).
    pub seed: u64,
    /// Committed instructions per run.
    pub instructions: u64,
    /// Pipeline geometry: `"alpha"` (Table 1) or `"tiny"`.
    pub pipeline: String,
    /// Clocking: `"single"` (one physical clock) or `"mcd"` (four domains).
    pub mode: String,
    /// All-domain nominal frequency in MHz.
    pub mhz: u64,
    /// On-line governor: `"none"` or any registry policy spec in the
    /// `id[:key=value,…]` grammar (e.g. `"attack-decay"`,
    /// `"queue-pi:setpoint=0.6"`).
    pub governor: String,
    /// Warm-up instructions streamed before the measured window.
    pub warmup: u64,
    /// Fault injection: `"none"` or `"ts-breach"` (jitter sized to defeat
    /// the §2.2 synchronization window; needs the `chaos` feature).
    pub chaos: String,
}

impl Default for CheckCase {
    fn default() -> Self {
        CheckCase {
            benchmark: "adpcm".into(),
            seed: 1,
            instructions: 1_000,
            pipeline: "alpha".into(),
            mode: "mcd".into(),
            mhz: 1_000,
            governor: "none".into(),
            warmup: 0,
            chaos: "none".into(),
        }
    }
}

impl CheckCase {
    /// Builds the machine this case describes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unrecognized field value, or of a
    /// chaos request when the `chaos` feature is compiled out.
    pub fn machine(&self) -> Result<MachineConfig, String> {
        let freq = Frequency::from_mhz(self.mhz);
        let mut m = match self.mode.as_str() {
            "single" => MachineConfig::global(self.seed, freq),
            "mcd" => {
                let mut m = MachineConfig::baseline_mcd(self.seed);
                m.mode = ClockingMode::Mcd {
                    frequencies: [freq; 4],
                };
                m
            }
            other => return Err(format!("unknown mode {other:?}")),
        };
        m.pipeline = match self.pipeline.as_str() {
            "alpha" => PipelineConfig::alpha21264(),
            "tiny" => PipelineConfig::tiny(),
            other => return Err(format!("unknown pipeline {other:?}")),
        };
        m.warmup_instructions = self.warmup;
        match self.chaos.as_str() {
            "none" => {}
            #[cfg(feature = "chaos")]
            "ts-breach" => {
                let p = freq.period();
                m.jitter = mcd_time::chaos::breaching_jitter(&m.sync, p, p);
            }
            #[cfg(not(feature = "chaos"))]
            "ts-breach" => {
                return Err("case needs the `chaos` feature (ts-breach jitter)".into());
            }
            other => return Err(format!("unknown chaos model {other:?}")),
        }
        self.policy()?;
        Ok(m)
    }

    /// The registry policy this case runs under, or `None` for an
    /// ungoverned run.
    ///
    /// # Errors
    ///
    /// Returns the registry's rejection for a governor spec that does not
    /// parse or validate.
    pub fn policy(&self) -> Result<Option<PolicySpec>, String> {
        if self.governor == "none" {
            return Ok(None);
        }
        PolicySpec::parse(&self.governor)
            .map(Some)
            .map_err(|e| format!("unknown governor {:?}: {e}", self.governor))
    }

    /// Whether this case injects a fault the invariant checker must flag.
    pub fn expects_violation(&self) -> bool {
        self.chaos != "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_case_builds_an_mcd_machine() {
        let m = CheckCase::default().machine().expect("valid case");
        assert!(m.is_mcd());
        assert_eq!(m.warmup_instructions, 0);
    }

    #[test]
    fn unknown_field_values_are_rejected_with_context() {
        let c = CheckCase {
            mode: "triple".into(),
            ..CheckCase::default()
        };
        assert!(c.machine().unwrap_err().contains("triple"));
        let c = CheckCase {
            governor: "banana".into(),
            ..CheckCase::default()
        };
        assert!(c.machine().unwrap_err().contains("banana"));
    }

    #[test]
    fn any_registry_policy_is_a_valid_governor() {
        for governor in ["attack-decay", "queue-pi", "queue-pi:setpoint=0.6,kp=0.7"] {
            let c = CheckCase {
                governor: governor.into(),
                ..CheckCase::default()
            };
            c.machine().expect("registry policies are valid governors");
            assert!(c.policy().expect("parses").is_some());
        }
        let none = CheckCase::default();
        assert!(none.policy().expect("parses").is_none());
        // Registry parameter validation reaches the case layer.
        let c = CheckCase {
            governor: "attack-decay:threshold=2.0".into(),
            ..CheckCase::default()
        };
        assert!(c.machine().is_err());
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn chaos_case_is_rejected_without_the_feature() {
        let c = CheckCase {
            chaos: "ts-breach".into(),
            ..CheckCase::default()
        };
        assert!(c.machine().unwrap_err().contains("chaos"));
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_case_builds_with_the_feature() {
        let c = CheckCase {
            chaos: "ts-breach".into(),
            ..CheckCase::default()
        };
        assert!(c.machine().is_ok());
    }
}
