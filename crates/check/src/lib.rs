//! Correctness harness for the MCD simulator.
//!
//! Three layers, cheapest first:
//!
//! 1. **Differential oracle** ([`diff`]): every configuration in a small
//!    lattice (and anything the fuzzer samples) runs twice — once on the
//!    optimized engine with all of its shortcuts (edge scheduler,
//!    idle-domain fast-forward, warm-state cache, incremental
//!    operating-point bookkeeping) and once on the deliberately-naive
//!    reference interpreter with none of them. The two serialized
//!    [`RunResult`](mcd_pipeline::RunResult)s must be byte-identical.
//! 2. **Runtime invariants** (feature `invariants`): the optimized run is
//!    audited from the inside — clock monotonicity, queue occupancy,
//!    sync-window cache coherence, operating-point ranges, on-grid
//!    governor requests, and the `T_s` jitter breach-rate bound.
//! 3. **Post-run energy checks** ([`post`]): the power model's breakdown
//!    of any result must have non-negative terms, domain energies that sum
//!    to the total, and shares in `[0, 1]`.
//!
//! The seeded fuzzer ([`mod@fuzz`]) samples configurations across all three
//! layers, greedily shrinks any failure, and publishes a minimal repro
//! JSON ([`repro`]) through the harness's atomic write path.

pub mod case;
pub mod diff;
pub mod fuzz;
pub mod lattice;
pub mod post;
pub mod repro;

pub use case::CheckCase;
pub use diff::{run_differential, DiffOutcome};
pub use fuzz::{fuzz, FailureKind, FuzzConfig, FuzzFailure, FuzzReport};
pub use lattice::lattice;
pub use post::check_energy;
