//! The curated differential lattice: small configurations spanning every
//! engine shortcut the reference interpreter removes.

use crate::case::CheckCase;

fn case(
    benchmark: &str,
    seed: u64,
    mode: &str,
    mhz: u64,
    governor: &str,
    pipeline: &str,
    warmup: u64,
) -> CheckCase {
    CheckCase {
        benchmark: benchmark.into(),
        seed,
        instructions: 1_500,
        pipeline: pipeline.into(),
        mode: mode.into(),
        mhz,
        governor: governor.into(),
        warmup,
        chaos: "none".into(),
    }
}

/// The configuration lattice the differential suite sweeps: three
/// benchmark personalities (compute-bound, branchy/cache-missing,
/// memory-bound) × {single, MCD} × {full speed, scaled} × {ungoverned,
/// attack/decay}, plus warm-up and tiny-geometry probes for the warm-cache
/// and queue-capacity corners.
pub fn lattice() -> Vec<CheckCase> {
    vec![
        // Single-clock, full speed: exercises the all-domains-per-edge tick.
        case("adpcm", 11, "single", 1_000, "none", "alpha", 0),
        case("gcc", 7, "single", 1_000, "none", "alpha", 0),
        case("mcf", 5, "single", 1_000, "none", "alpha", 0),
        // Single-clock, scaled: off-nominal periods everywhere.
        case("gcc", 3, "single", 500, "none", "alpha", 0),
        // MCD, full speed: edge interleaving, sync windows, fast-forward.
        case("adpcm", 11, "mcd", 1_000, "none", "alpha", 0),
        case("gcc", 7, "mcd", 1_000, "none", "alpha", 0),
        case("mcf", 5, "mcd", 1_000, "none", "alpha", 0),
        // MCD, scaled: bigger windows, different jitter clamp.
        case("mcf", 9, "mcd", 500, "none", "alpha", 0),
        case("adpcm", 2, "mcd", 250, "none", "alpha", 0),
        // Governed MCD: control-interval sampling and grid-snapped requests.
        case("adpcm", 11, "mcd", 1_000, "attack-decay", "alpha", 0),
        case("gcc", 7, "mcd", 1_000, "attack-decay", "alpha", 0),
        case("mcf", 5, "mcd", 1_000, "attack-decay", "alpha", 0),
        case("bzip2", 13, "mcd", 800, "attack-decay", "alpha", 0),
        // Governed MCD under the PI setpoint controller: integral state and
        // multiplicative steps instead of attack/decay jumps, plus one
        // off-default tuning to exercise registry parameter plumbing.
        case("adpcm", 11, "mcd", 1_000, "queue-pi", "alpha", 0),
        case("gcc", 7, "mcd", 1_000, "queue-pi", "alpha", 0),
        case(
            "mcf",
            9,
            "mcd",
            500,
            "queue-pi:setpoint=0.6,kp=0.7",
            "alpha",
            0,
        ),
        // Warm-up: the process-wide warm cache vs. from-scratch rebuild.
        case("g721", 3, "mcd", 1_000, "none", "alpha", 20_000),
        case("gcc", 5, "single", 1_000, "none", "alpha", 20_000),
        // Tiny geometry: saturated queues and constant back-pressure.
        case("gcc", 17, "mcd", 1_000, "none", "tiny", 0),
        case("mcf", 17, "mcd", 500, "attack-decay", "tiny", 0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_cases_are_valid_and_distinct() {
        let cases = lattice();
        assert!(cases.len() >= 12);
        for c in &cases {
            c.machine().expect("lattice case builds");
        }
        for (i, a) in cases.iter().enumerate() {
            for b in &cases[i + 1..] {
                assert_ne!(a, b, "duplicate lattice case");
            }
        }
    }
}
