//! The seeded config fuzzer: sample, check, shrink, publish.

use std::path::PathBuf;

use mcd_time::SimRng;

use crate::case::CheckCase;
use crate::diff::{run_differential, DiffOutcome};
use crate::repro;

/// Which layer a fuzz case failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Optimized and reference engines disagreed.
    Differential,
    /// The runtime invariant checker flagged a clean-configuration run.
    Invariant,
    /// The energy post-checks flagged the (matching) result.
    Energy,
    /// A fault-injected run the invariant checker should have flagged came
    /// back clean — the detector itself is broken.
    MissedViolation,
    /// The sampled case failed to build (fuzzer/config bug).
    InvalidCase,
}

impl FailureKind {
    /// Stable slug used in repro files and file names.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Differential => "differential",
            FailureKind::Invariant => "invariant",
            FailureKind::Energy => "energy",
            FailureKind::MissedViolation => "missed-violation",
            FailureKind::InvalidCase => "invalid-case",
        }
    }

    /// Parses a repro-file slug back.
    pub fn parse(slug: &str) -> Option<FailureKind> {
        Some(match slug {
            "differential" => FailureKind::Differential,
            "invariant" => FailureKind::Invariant,
            "energy" => FailureKind::Energy,
            "missed-violation" => FailureKind::MissedViolation,
            "invalid-case" => FailureKind::InvalidCase,
            _ => return None,
        })
    }
}

/// Fuzz campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Root seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Cases to sample.
    pub cases: u64,
    /// Directory repro files are published into.
    pub out_dir: PathBuf,
}

/// One shrunk, published failure.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Failure layer.
    pub kind: FailureKind,
    /// The shrunk (minimal) failing case.
    pub case: CheckCase,
    /// Human-readable specifics from the failing check.
    pub detail: String,
    /// Published repro file.
    pub repro: PathBuf,
}

/// Campaign summary.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases executed.
    pub executed: u64,
    /// Of those, fault-injected (chaos) cases.
    pub chaos_cases: u64,
    /// Shrunk failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
    /// Stale `.tmp` droppings swept from the output directory on startup.
    pub swept_tmp: usize,
}

impl FuzzReport {
    /// Whether every sampled case passed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Samples one case from `rng`. Chaos cases are only generated when both
/// the `chaos` (to build the breaching jitter) and `invariants` (to detect
/// it) features are compiled in.
fn sample(rng: &mut SimRng) -> CheckCase {
    const BENCHMARKS: [&str; 5] = ["adpcm", "g721", "gcc", "bzip2", "mcf"];
    const MHZ: [u64; 4] = [250, 500, 800, 1_000];
    let mut case = CheckCase {
        benchmark: BENCHMARKS[rng.below(BENCHMARKS.len() as u64) as usize].into(),
        seed: 1 + rng.below(1 << 20),
        instructions: 400 + rng.below(1_600),
        pipeline: if rng.chance(0.25) { "tiny" } else { "alpha" }.into(),
        mode: if rng.chance(0.35) { "single" } else { "mcd" }.into(),
        mhz: MHZ[rng.below(MHZ.len() as u64) as usize],
        governor: "none".into(),
        warmup: if rng.chance(0.15) { 15_000 } else { 0 },
        chaos: "none".into(),
    };
    if case.mode == "mcd" && rng.chance(0.3) {
        case.governor = if rng.chance(0.5) {
            "attack-decay"
        } else {
            "queue-pi"
        }
        .into();
    }
    #[cfg(all(feature = "chaos", feature = "invariants"))]
    if rng.chance(0.15) {
        case.chaos = "ts-breach".into();
    }
    case
}

/// Runs every applicable check layer on `case`; `None` means it passed.
pub fn check_case(case: &CheckCase) -> Option<(FailureKind, String)> {
    if let Err(e) = case.machine() {
        return Some((FailureKind::InvalidCase, e));
    }
    if case.expects_violation() {
        // Fault-injected case: the invariant checker must flag it. A clean
        // report means the detector is broken, which is itself a failure.
        #[cfg(feature = "invariants")]
        {
            match run_checked(case) {
                Err(e) => return Some((FailureKind::InvalidCase, e)),
                Ok(report) if report.is_clean() => {
                    return Some((
                        FailureKind::MissedViolation,
                        format!(
                            "fault-injected run came back clean ({} edges audited)",
                            report.checked_edges
                        ),
                    ));
                }
                Ok(_) => return None,
            }
        }
        #[cfg(not(feature = "invariants"))]
        return Some((
            FailureKind::InvalidCase,
            "chaos case sampled without the invariants feature".into(),
        ));
    }
    match run_differential(case) {
        Err(e) => return Some((FailureKind::InvalidCase, e)),
        Ok(DiffOutcome::Match) => {}
        Ok(DiffOutcome::Mismatch { .. }) => {
            return Some((
                FailureKind::Differential,
                "optimized and reference results diverged".into(),
            ));
        }
        Ok(DiffOutcome::EnergyViolation { problems }) => {
            return Some((FailureKind::Energy, problems.join("; ")));
        }
    }
    #[cfg(feature = "invariants")]
    {
        match run_checked(case) {
            Err(e) => return Some((FailureKind::InvalidCase, e)),
            Ok(report) if !report.is_clean() => {
                return Some((FailureKind::Invariant, report.summary()));
            }
            Ok(_) => {}
        }
    }
    None
}

/// Runs the optimized engine with the runtime invariant checker armed.
#[cfg(feature = "invariants")]
fn run_checked(case: &CheckCase) -> Result<mcd_pipeline::InvariantReport, String> {
    use mcd_pipeline::Pipeline;
    use mcd_workload::{suites, WorkloadGenerator};
    let profile = suites::by_name(&case.benchmark)
        .ok_or_else(|| format!("unknown benchmark {:?}", case.benchmark))?;
    let machine = case.machine()?;
    let generator = WorkloadGenerator::new(profile.clone(), machine.seed);
    let pipeline = Pipeline::new(machine, generator);
    let (_, report) = match case.policy()? {
        Some(policy) => {
            let governor = policy.build().expect("policy() already validated the spec");
            pipeline.run_with_governor_checked(case.instructions, governor)
        }
        None => pipeline.run_checked(case.instructions),
    };
    Ok(report)
}

/// Greedily shrinks `case` while it keeps failing with the same kind:
/// first the instruction count is halved down (cheapest runs first), then
/// every other field is driven toward its [`CheckCase::default`] value so
/// the published repro can omit it.
pub fn shrink(case: CheckCase, kind: FailureKind) -> CheckCase {
    let still_fails = |c: &CheckCase| matches!(check_case(c), Some((k, _)) if k == kind);
    let d = CheckCase::default();
    let mut best = case;
    loop {
        let mut improved = false;
        // Halve the run length (floor 200: shorter runs stop exercising
        // the steady-state invariants at all).
        while best.instructions > 200 {
            let mut cand = best.clone();
            cand.instructions = (cand.instructions / 2).max(200);
            if still_fails(&cand) {
                best = cand;
                improved = true;
            } else {
                break;
            }
        }
        let resets: [fn(&mut CheckCase, &CheckCase); 7] = [
            |c, d| c.warmup = d.warmup,
            |c, d| c.governor = d.governor.clone(),
            |c, d| c.pipeline = d.pipeline.clone(),
            |c, d| c.mode = d.mode.clone(),
            |c, d| c.mhz = d.mhz,
            |c, d| c.benchmark = d.benchmark.clone(),
            |c, d| c.seed = d.seed,
        ];
        for reset in resets {
            let mut cand = best.clone();
            reset(&mut cand, &d);
            if cand != best && still_fails(&cand) {
                best = cand;
                improved = true;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Runs a seeded fuzz campaign: sweeps stale temp files from the output
/// directory, samples `cases` configurations, checks each, and shrinks +
/// publishes every failure.
///
/// # Errors
///
/// Returns a description when the output directory cannot be prepared or a
/// repro file cannot be written.
pub fn fuzz(cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    std::fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", cfg.out_dir.display()))?;
    let swept_tmp = mcd_harness::sweep_stale_tmp(&cfg.out_dir)
        .map_err(|e| format!("cannot sweep {}: {e}", cfg.out_dir.display()))?;
    let root = SimRng::seed_from_u64(cfg.seed);
    let mut failures = Vec::new();
    let mut chaos_cases = 0;
    for i in 0..cfg.cases {
        let mut rng = root.derive(i);
        let case = sample(&mut rng);
        if case.expects_violation() {
            chaos_cases += 1;
        }
        if let Some((kind, detail)) = check_case(&case) {
            let shrunk = shrink(case, kind);
            let path = repro::write(&cfg.out_dir, &shrunk, kind.as_str())
                .map_err(|e| format!("cannot publish repro: {e}"))?;
            failures.push(FuzzFailure {
                kind,
                case: shrunk,
                detail,
                repro: path,
            });
        }
    }
    Ok(FuzzReport {
        executed: cfg.cases,
        chaos_cases,
        failures,
        swept_tmp,
    })
}

/// Replays a published repro file: parses it and re-runs every applicable
/// check layer. Returns what failed now (`None` = no longer reproduces).
///
/// # Errors
///
/// Returns a description when the file is unreadable or malformed.
pub fn replay_file(path: &std::path::Path) -> Result<Option<(FailureKind, String)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let (case, _failure) = repro::from_json(&text)?;
    Ok(check_case(&case))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_valid() {
        let root = SimRng::seed_from_u64(99);
        for i in 0..32 {
            let a = sample(&mut root.derive(i));
            let b = sample(&mut root.derive(i));
            assert_eq!(a, b, "same seed, same case");
            a.machine().expect("sampled case builds");
        }
    }

    #[test]
    fn failure_kind_slugs_round_trip() {
        for kind in [
            FailureKind::Differential,
            FailureKind::Invariant,
            FailureKind::Energy,
            FailureKind::MissedViolation,
            FailureKind::InvalidCase,
        ] {
            assert_eq!(FailureKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FailureKind::parse("nope"), None);
    }
}
