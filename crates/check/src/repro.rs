//! Minimal failure-repro files.
//!
//! A repro is a small pretty-printed JSON object carrying the schema tag,
//! the failure kind, and *only* the [`CheckCase`] fields that differ from
//! [`CheckCase::default`] — the fuzzer's shrinker drives every field it
//! can back to its default so the published file stays a handful of lines.
//!
//! Files are published through the harness's atomic tmp → fsync → rename
//! path ([`mcd_harness::write_atomic_durable`]), so a hard kill mid-write
//! can never leave a torn repro; stale `.tmp` droppings from killed runs
//! are swept by the fuzzer on startup via [`mcd_harness::sweep_stale_tmp`].

use std::io;
use std::path::{Path, PathBuf};

use serde::{Map, Number, Value};

use crate::case::CheckCase;

/// Schema tag every repro file carries.
pub const SCHEMA: &str = "mcd-check-repro/1";

fn put_str(map: &mut Map, key: &str, value: &str, default: &str) {
    if value != default {
        map.insert(key.to_string(), Value::String(value.to_string()));
    }
}

fn put_u64(map: &mut Map, key: &str, value: u64, default: u64) {
    if value != default {
        map.insert(key.to_string(), Value::Number(Number::U64(value)));
    }
}

/// Renders `case` as a minimal repro document for `failure` (a
/// [`FailureKind`](crate::fuzz::FailureKind) slug).
pub fn to_json(case: &CheckCase, failure: &str) -> String {
    let d = CheckCase::default();
    let mut map = Map::new();
    map.insert("schema".into(), Value::String(SCHEMA.into()));
    map.insert("failure".into(), Value::String(failure.into()));
    put_str(&mut map, "benchmark", &case.benchmark, &d.benchmark);
    put_u64(&mut map, "seed", case.seed, d.seed);
    put_u64(&mut map, "instructions", case.instructions, d.instructions);
    put_str(&mut map, "pipeline", &case.pipeline, &d.pipeline);
    put_str(&mut map, "mode", &case.mode, &d.mode);
    put_u64(&mut map, "mhz", case.mhz, d.mhz);
    put_str(&mut map, "governor", &case.governor, &d.governor);
    put_u64(&mut map, "warmup", case.warmup, d.warmup);
    put_str(&mut map, "chaos", &case.chaos, &d.chaos);
    serde_json::to_string_pretty(&Value::Object(map)).expect("value serializes")
}

fn get_str(map: &Map, key: &str, default: &str) -> Result<String, String> {
    match map.get(key) {
        None => Ok(default.to_string()),
        Some(Value::String(s)) => Ok(s.clone()),
        Some(other) => Err(format!("field {key:?} should be a string, got {other:?}")),
    }
}

fn get_u64(map: &Map, key: &str, default: u64) -> Result<u64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(Value::Number(Number::U64(v))) => Ok(*v),
        Some(other) => Err(format!("field {key:?} should be an integer, got {other:?}")),
    }
}

/// Parses a repro document back into its case and failure slug.
///
/// # Errors
///
/// Returns a description when the document is malformed, the schema tag is
/// wrong, or a field has the wrong type.
pub fn from_json(text: &str) -> Result<(CheckCase, String), String> {
    let value: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Object(map) = value else {
        return Err("repro must be a JSON object".into());
    };
    let schema = get_str(&map, "schema", "")?;
    if schema != SCHEMA {
        return Err(format!("unknown schema {schema:?}, expected {SCHEMA:?}"));
    }
    let failure = get_str(&map, "failure", "")?;
    if failure.is_empty() {
        return Err("repro is missing its failure kind".into());
    }
    let d = CheckCase::default();
    let case = CheckCase {
        benchmark: get_str(&map, "benchmark", &d.benchmark)?,
        seed: get_u64(&map, "seed", d.seed)?,
        instructions: get_u64(&map, "instructions", d.instructions)?,
        pipeline: get_str(&map, "pipeline", &d.pipeline)?,
        mode: get_str(&map, "mode", &d.mode)?,
        mhz: get_u64(&map, "mhz", d.mhz)?,
        governor: get_str(&map, "governor", &d.governor)?,
        warmup: get_u64(&map, "warmup", d.warmup)?,
        chaos: get_str(&map, "chaos", &d.chaos)?,
    };
    Ok((case, failure))
}

/// Stable fingerprint naming a repro file (FNV-1a over the full document).
fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Publishes a repro for `case` into `dir` (created if needed) through the
/// atomic durable-write path, returning the file's path. The same failure
/// always lands on the same file name, so re-running the fuzzer never
/// accumulates duplicates.
pub fn write(dir: &Path, case: &CheckCase, failure: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = to_json(case, failure);
    let path = dir.join(format!("repro-{failure}-{:016x}.json", fingerprint(&json)));
    mcd_harness::write_atomic_durable(&path, json.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_case_round_trips_and_stays_tiny() {
        let case = CheckCase {
            chaos: "ts-breach".into(),
            seed: 42,
            ..CheckCase::default()
        };
        let json = to_json(&case, "missed-violation");
        // Default-valued fields are omitted, keeping the repro small.
        assert!(!json.contains("governor"));
        assert!(!json.contains("warmup"));
        assert!(
            json.lines().count() <= 10,
            "repro should be at most 10 lines:\n{json}"
        );
        let (back, failure) = from_json(&json).expect("round-trips");
        assert_eq!(back, case);
        assert_eq!(failure, "missed-violation");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = from_json(r#"{"schema":"other/9","failure":"x"}"#).unwrap_err();
        assert!(err.contains("other/9"));
    }

    #[test]
    fn write_publishes_atomically_and_deterministically() {
        let dir = std::env::temp_dir().join(format!("mcd-check-repro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let case = CheckCase::default();
        let a = write(&dir, &case, "differential").expect("writes");
        let b = write(&dir, &case, "differential").expect("writes again");
        assert_eq!(a, b, "same failure, same file");
        let names: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir exists")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        assert_eq!(names.len(), 1);
        assert!(!names[0].contains(".tmp"), "no temp droppings: {names:?}");
        let (back, _) = from_json(&std::fs::read_to_string(&a).expect("readable")).expect("parses");
        assert_eq!(back, case);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
