//! Post-run energy invariants over the power model's breakdown.

use mcd_pipeline::{DomainId, RunResult};
use mcd_power::PowerModel;

/// Relative tolerance for the domain-sum identity. The breakdown is a sum
/// of IEEE-754 doubles accumulated in two different orders, so exact
/// equality is too strict, but anything past a few ulps of the total is a
/// real accounting bug.
const REL_TOL: f64 = 1e-9;

/// Audits the paper-calibrated energy breakdown of `result`:
///
/// - every per-unit, per-domain clock and idle-floor term is finite and
///   non-negative;
/// - the four domain energies sum to [`total`](mcd_power::EnergyBreakdown::total);
/// - every [`domain_share`](mcd_power::EnergyBreakdown::domain_share) lies
///   in `[0, 1]`, and the shares sum to 1 (or all-zero for a zero-energy
///   run).
///
/// Returns one human-readable line per violation (empty = clean).
pub fn check_energy(result: &RunResult) -> Vec<String> {
    let breakdown = PowerModel::paper_calibrated().energy_of(result);
    let mut problems = Vec::new();
    for (i, &e) in breakdown.by_unit.iter().enumerate() {
        if !e.is_finite() || e < 0.0 {
            problems.push(format!("unit {i} energy {e} is negative or non-finite"));
        }
    }
    for d in DomainId::ALL {
        let clock = breakdown.clock[d.index()];
        if !clock.is_finite() || clock < 0.0 {
            problems.push(format!(
                "{d:?} clock energy {clock} is negative or non-finite"
            ));
        }
        let idle = breakdown.idle_floor[d.index()];
        if !idle.is_finite() || idle < 0.0 {
            problems.push(format!(
                "{d:?} idle-floor energy {idle} is negative or non-finite"
            ));
        }
    }
    let total = breakdown.total();
    if !total.is_finite() || total < 0.0 {
        problems.push(format!("total energy {total} is negative or non-finite"));
        return problems;
    }
    let domain_sum: f64 = DomainId::ALL.iter().map(|d| breakdown.domain(*d)).sum();
    if (domain_sum - total).abs() > REL_TOL * total.max(1.0) {
        problems.push(format!(
            "domain energies sum to {domain_sum}, total reports {total}"
        ));
    }
    let mut share_sum = 0.0;
    for d in DomainId::ALL {
        let share = breakdown.domain_share(d);
        if !share.is_finite() || !(0.0..=1.0 + REL_TOL).contains(&share) {
            problems.push(format!("{d:?} share {share} outside [0, 1]"));
        }
        share_sum += share;
    }
    let expected_share_sum = if total == 0.0 { 0.0 } else { 1.0 };
    if (share_sum - expected_share_sum).abs() > 1e-6 {
        problems.push(format!(
            "domain shares sum to {share_sum}, expected {expected_share_sum}"
        ));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_pipeline::{simulate, MachineConfig};
    use mcd_workload::suites;

    #[test]
    fn real_runs_pass_the_energy_audit() {
        let profile = suites::by_name("gcc").expect("known benchmark");
        for m in [MachineConfig::baseline(3), MachineConfig::baseline_mcd(3)] {
            let r = simulate(&m, &profile, 2_000);
            let problems = check_energy(&r);
            assert!(problems.is_empty(), "{problems:?}");
        }
    }
}
