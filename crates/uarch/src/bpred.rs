//! The paper's branch predictor (Table 1): a McFarling-style combination of
//! a bimodal predictor and a 2-level PAg predictor, plus a 4096-set 2-way
//! BTB for target prediction.
//!
//! * Bimodal: 1024 2-bit counters indexed by PC.
//! * 2-level PAg: level 1 is a 1024-entry per-address history table holding
//!   10 bits of local history; level 2 is a 1024-entry table of 2-bit
//!   counters indexed by the history pattern.
//! * Chooser: 4096 2-bit counters selecting between the two, trained on
//!   which component was right.

use serde::{Deserialize, Serialize};

/// Predictor table sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// Bimodal table entries.
    pub bimodal_entries: usize,
    /// PAg level-1 (history) entries.
    pub l1_entries: usize,
    /// Bits of local history kept per level-1 entry.
    pub history_bits: u32,
    /// PAg level-2 (pattern counter) entries.
    pub l2_entries: usize,
    /// Chooser (meta) table entries.
    pub chooser_entries: usize,
    /// BTB sets.
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_ways: usize,
}

impl BranchPredictorConfig {
    /// Table 1 of the paper.
    pub fn paper() -> Self {
        BranchPredictorConfig {
            bimodal_entries: 1024,
            l1_entries: 1024,
            history_bits: 10,
            l2_entries: 1024,
            chooser_entries: 4096,
            btb_sets: 4096,
            btb_ways: 2,
        }
    }
}

/// The outcome of a prediction lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target, if the BTB knows this branch.
    pub target: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

/// Saturating 2-bit counter helpers.
fn bump(counter: &mut u8, up: bool) {
    if up {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

fn predicts_taken(counter: u8) -> bool {
    counter >= 2
}

/// Combining branch predictor with BTB.
///
/// # Example
///
/// ```
/// use mcd_uarch::{BranchPredictor, BranchPredictorConfig};
///
/// let mut bp = BranchPredictor::new(BranchPredictorConfig::paper());
/// // A loop branch that is always taken becomes perfectly predicted.
/// for _ in 0..64 {
///     bp.update(0x4000, true, 0x4100);
/// }
/// let p = bp.predict(0x4000);
/// assert!(p.taken);
/// assert_eq!(p.target, Some(0x4100));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    bimodal: Vec<u8>,
    l1_history: Vec<u16>,
    l2_counters: Vec<u8>,
    chooser: Vec<u8>,
    btb: Vec<Vec<BtbEntry>>,
    tick: u64,
    lookups: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Builds a predictor with weakly-not-taken initial state.
    pub fn new(config: BranchPredictorConfig) -> Self {
        BranchPredictor {
            config,
            bimodal: vec![1; config.bimodal_entries],
            l1_history: vec![0; config.l1_entries],
            l2_counters: vec![1; config.l2_entries],
            chooser: vec![2; config.chooser_entries],
            btb: vec![
                vec![
                    BtbEntry {
                        tag: 0,
                        target: 0,
                        valid: false,
                        lru: 0
                    };
                    config.btb_ways
                ];
                config.btb_sets
            ],
            tick: 0,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predictor configuration.
    pub fn config(&self) -> BranchPredictorConfig {
        self.config
    }

    /// Number of direction lookups made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of mispredicted directions (recorded by `update`).
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Clears lookup/mispredict counters (keeps learned state).
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.mispredicts = 0;
    }

    /// Direction misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }

    fn pc_index(pc: u64, len: usize) -> usize {
        ((pc >> 2) as usize) & (len - 1)
    }

    fn pag_counter_index(&self, pc: u64) -> usize {
        let h = self.l1_history[Self::pc_index(pc, self.config.l1_entries)];
        (h as usize) & (self.l2_counters.len() - 1)
    }

    fn components(&self, pc: u64) -> (bool, bool, bool) {
        let bimodal = predicts_taken(self.bimodal[Self::pc_index(pc, self.config.bimodal_entries)]);
        let pag = predicts_taken(self.l2_counters[self.pag_counter_index(pc)]);
        let use_pag = predicts_taken(self.chooser[Self::pc_index(pc, self.config.chooser_entries)]);
        (bimodal, pag, use_pag)
    }

    /// Looks up direction and target for `pc`. Counts as one lookup.
    pub fn predict(&mut self, pc: u64) -> Prediction {
        self.lookups += 1;
        let (bimodal, pag, use_pag) = self.components(pc);
        let taken = if use_pag { pag } else { bimodal };
        Prediction {
            taken,
            target: self.btb_lookup(pc),
        }
    }

    fn btb_lookup(&self, pc: u64) -> Option<u64> {
        let set = Self::pc_index(pc, self.config.btb_sets);
        let tag = pc >> 2;
        self.btb[set]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.target)
    }

    /// Trains the predictor with the architectural outcome. Records a
    /// misprediction if the *current* tables would have predicted wrongly
    /// (call before or after `predict`; training is idempotent per branch).
    pub fn update(&mut self, pc: u64, taken: bool, target: u64) {
        let (bimodal, pag, use_pag) = self.components(pc);
        let predicted = if use_pag { pag } else { bimodal };
        if predicted != taken {
            self.mispredicts += 1;
        }

        // Chooser trains toward whichever component was right.
        if bimodal != pag {
            let idx = Self::pc_index(pc, self.config.chooser_entries);
            bump(&mut self.chooser[idx], pag == taken);
        }
        // Component counters.
        let bi = Self::pc_index(pc, self.config.bimodal_entries);
        bump(&mut self.bimodal[bi], taken);
        let l2 = self.pag_counter_index(pc);
        bump(&mut self.l2_counters[l2], taken);
        // History update.
        let l1 = Self::pc_index(pc, self.config.l1_entries);
        let mask = (1u16 << self.config.history_bits) - 1;
        self.l1_history[l1] = ((self.l1_history[l1] << 1) | taken as u16) & mask;
        // BTB allocation for taken branches.
        if taken {
            self.btb_insert(pc, target);
        }
    }

    fn btb_insert(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let set = Self::pc_index(pc, self.config.btb_sets);
        let tag = pc >> 2;
        let ways = &mut self.btb[set];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.lru = self.tick;
            return;
        }
        let victim = match ways.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("ways non-empty"),
        };
        ways[victim] = BtbEntry {
            tag,
            target,
            valid: true,
            lru: self.tick,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig::paper())
    }

    #[test]
    fn learns_always_taken() {
        let mut bp = predictor();
        for _ in 0..16 {
            bp.update(0x100, true, 0x200);
        }
        assert!(bp.predict(0x100).taken);
        assert_eq!(bp.predict(0x100).target, Some(0x200));
    }

    #[test]
    fn learns_never_taken() {
        let mut bp = predictor();
        for _ in 0..16 {
            bp.update(0x104, false, 0x200);
        }
        assert!(!bp.predict(0x104).taken);
    }

    #[test]
    fn pag_learns_alternating_pattern() {
        // taken/not-taken alternation is invisible to bimodal but trivial
        // for 10 bits of local history.
        let mut bp = predictor();
        let mut taken = false;
        let mut wrong_late = 0;
        for i in 0..4000 {
            let (b, p, use_pag) = bp.components(0x108);
            let predicted = if use_pag { p } else { b };
            if i > 2000 && predicted != taken {
                wrong_late += 1;
            }
            bp.update(0x108, taken, 0x300);
            taken = !taken;
        }
        assert!(
            wrong_late < 20,
            "PAg should nail the pattern, wrong {wrong_late}"
        );
    }

    #[test]
    fn mispredict_rate_reflects_randomness() {
        // A branch with i.i.d. 50/50 outcomes cannot be predicted: rate≈0.5.
        let mut bp = predictor();
        let mut x = 0x12345678u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 63) != 0;
            bp.predict(0x10c);
            bp.update(0x10c, taken, 0x400);
        }
        let r = bp.mispredict_rate();
        assert!(r > 0.4 && r < 0.6, "rate {r}");
    }

    #[test]
    fn biased_branches_predict_well() {
        let mut bp = predictor();
        let mut x = 7u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x % 100) < 95; // 95 % taken
            bp.predict(0x110);
            bp.update(0x110, taken, 0x500);
        }
        let r = bp.mispredict_rate();
        assert!(r < 0.12, "rate {r}");
    }

    #[test]
    fn btb_unknown_branch_has_no_target() {
        let mut bp = predictor();
        assert_eq!(bp.predict(0x999000).target, None);
    }

    #[test]
    fn btb_conflict_evicts_lru() {
        let mut bp = predictor();
        let stride = (4096u64) << 2; // same BTB set, different tags
        bp.update(0x1000, true, 0xa);
        bp.update(0x1000 + stride, true, 0xb);
        bp.update(0x1000, true, 0xa); // refresh
        bp.update(0x1000 + 2 * stride, true, 0xc); // evicts +stride
        assert_eq!(bp.predict(0x1000).target, Some(0xa));
        assert_eq!(bp.predict(0x1000 + stride).target, None);
        assert_eq!(bp.predict(0x1000 + 2 * stride).target, Some(0xc));
    }
}
