//! Microarchitectural building blocks for the MCD pipeline.
//!
//! Everything here is a self-contained, synchronously-clocked structure —
//! the clock-domain machinery lives in `mcd-time` and the pipeline glue in
//! `mcd-pipeline`. The parameters follow Table 1 of the paper (Alpha
//! 21264-like): 64 KB 2-way L1 caches, 1 MB direct-mapped L2, a combining
//! bimodal + 2-level PAg branch predictor with a 4096-set 2-way BTB, an
//! 80-entry ROB, 20/15-entry integer/FP issue queues, a 64-entry load/store
//! queue, and 72+72 physical registers.

pub mod bpred;
pub mod cache;
pub mod fu;
pub mod lsq;
pub mod queues;
pub mod regfile;

pub use bpred::{BranchPredictor, BranchPredictorConfig, Prediction};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use fu::{FuKind, FuPool, FuPoolConfig};
pub use lsq::{LoadStoreQueue, LsqEntryId, MemAccessKind};
pub use queues::{AgeQueue, CircularQueue, SlotPool, SlotToken};
pub use regfile::{PhysReg, RenameError, RenameUnit};
