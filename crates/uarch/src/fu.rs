//! Functional-unit pools with occupancy tracking.
//!
//! Table 1: 4 integer ALUs + 1 integer multiply/divide unit, 2 FP ALUs +
//! 1 FP multiply/divide/sqrt unit. Memory ports are modeled as a pool too.
//! Units are reserved for an *occupancy window* in absolute time: pipelined
//! operations hold a unit for one issue cycle, unpipelined ones (divide,
//! sqrt) for their full latency.

use serde::{Deserialize, Serialize};

/// Functional-unit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Simple integer ALU.
    IntAlu,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Floating-point adder.
    FpAlu,
    /// Floating-point multiply/divide/sqrt unit.
    FpMulDiv,
    /// Data-cache port.
    MemPort,
}

impl FuKind {
    /// All kinds, in a stable order.
    pub const ALL: [FuKind; 5] = [
        FuKind::IntAlu,
        FuKind::IntMulDiv,
        FuKind::FpAlu,
        FuKind::FpMulDiv,
        FuKind::MemPort,
    ];
}

/// Unit counts per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuPoolConfig {
    /// Integer ALUs (paper: 4).
    pub int_alu: usize,
    /// Integer multiply/divide units (paper: 1).
    pub int_muldiv: usize,
    /// FP adders (paper: 2).
    pub fp_alu: usize,
    /// FP multiply/divide/sqrt units (paper: 1).
    pub fp_muldiv: usize,
    /// Cache ports (2, typical for a 21264-like L1D).
    pub mem_ports: usize,
}

impl FuPoolConfig {
    /// Table 1 of the paper.
    pub fn paper() -> Self {
        FuPoolConfig {
            int_alu: 4,
            int_muldiv: 1,
            fp_alu: 2,
            fp_muldiv: 1,
            mem_ports: 2,
        }
    }

    fn count(&self, kind: FuKind) -> usize {
        match kind {
            FuKind::IntAlu => self.int_alu,
            FuKind::IntMulDiv => self.int_muldiv,
            FuKind::FpAlu => self.fp_alu,
            FuKind::FpMulDiv => self.fp_muldiv,
            FuKind::MemPort => self.mem_ports,
        }
    }
}

/// Tracks per-instance busy-until times for every unit kind.
///
/// Times are raw femtosecond counts — this crate stays independent of the
/// clocking crate, and the pipeline passes absolute times through.
///
/// # Example
///
/// ```
/// use mcd_uarch::{FuKind, FuPool, FuPoolConfig};
///
/// let mut pool = FuPool::new(FuPoolConfig { int_alu: 1, ..FuPoolConfig::paper() });
/// assert!(pool.try_acquire(FuKind::IntAlu, 100, 200));
/// assert!(!pool.try_acquire(FuKind::IntAlu, 150, 250)); // still busy
/// assert!(pool.try_acquire(FuKind::IntAlu, 200, 300)); // free again
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    config: FuPoolConfig,
    busy_until: [Vec<u64>; 5],
    acquisitions: [u64; 5],
}

impl FuPool {
    /// Builds a pool with all units free.
    ///
    /// # Panics
    ///
    /// Panics if any unit count is zero.
    pub fn new(config: FuPoolConfig) -> Self {
        let busy_until = FuKind::ALL.map(|k| {
            let n = config.count(k);
            assert!(n > 0, "unit count for {k:?} must be positive");
            vec![0u64; n]
        });
        FuPool {
            config,
            busy_until,
            acquisitions: [0; 5],
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> FuPoolConfig {
        self.config
    }

    fn kind_index(kind: FuKind) -> usize {
        FuKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL")
    }

    /// Attempts to reserve a unit of `kind` at time `now`, holding it until
    /// `busy_until`. Returns `false` if every instance is occupied.
    pub fn try_acquire(&mut self, kind: FuKind, now: u64, busy_until: u64) -> bool {
        let idx = Self::kind_index(kind);
        if let Some(slot) = self.busy_until[idx].iter_mut().find(|t| **t <= now) {
            *slot = busy_until;
            self.acquisitions[idx] += 1;
            true
        } else {
            false
        }
    }

    /// Number of instances of `kind` free at `now`.
    pub fn free_at(&self, kind: FuKind, now: u64) -> usize {
        let idx = Self::kind_index(kind);
        self.busy_until[idx].iter().filter(|t| **t <= now).count()
    }

    /// Total successful acquisitions of `kind` (an activity statistic).
    pub fn acquisitions(&self, kind: FuKind) -> u64 {
        self.acquisitions[Self::kind_index(kind)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts() {
        let p = FuPoolConfig::paper();
        assert_eq!(p.int_alu, 4);
        assert_eq!(p.int_muldiv, 1);
        assert_eq!(p.fp_alu, 2);
        assert_eq!(p.fp_muldiv, 1);
    }

    #[test]
    fn four_int_alus_saturate() {
        let mut pool = FuPool::new(FuPoolConfig::paper());
        for _ in 0..4 {
            assert!(pool.try_acquire(FuKind::IntAlu, 0, 10));
        }
        assert!(!pool.try_acquire(FuKind::IntAlu, 0, 10));
        assert_eq!(pool.free_at(FuKind::IntAlu, 0), 0);
        assert_eq!(pool.free_at(FuKind::IntAlu, 10), 4);
    }

    #[test]
    fn unpipelined_divide_blocks_unit() {
        let mut pool = FuPool::new(FuPoolConfig::paper());
        // A divide occupies the single int mul/div unit for 20 time units.
        assert!(pool.try_acquire(FuKind::IntMulDiv, 0, 20));
        assert!(!pool.try_acquire(FuKind::IntMulDiv, 5, 25));
        assert!(pool.try_acquire(FuKind::IntMulDiv, 20, 40));
    }

    #[test]
    fn kinds_are_independent() {
        let mut pool = FuPool::new(FuPoolConfig::paper());
        assert!(pool.try_acquire(FuKind::IntMulDiv, 0, 100));
        assert!(pool.try_acquire(FuKind::FpMulDiv, 0, 100));
        assert_eq!(pool.acquisitions(FuKind::IntMulDiv), 1);
        assert_eq!(pool.acquisitions(FuKind::FpMulDiv), 1);
        assert_eq!(pool.acquisitions(FuKind::IntAlu), 0);
    }
}
