//! Set-associative cache model with true-LRU replacement.
//!
//! Timing is owned by the pipeline (Table 1 latencies: L1 2 cycles, L2 12
//! cycles); this module models *contents* — which accesses hit — plus hit,
//! miss, and writeback statistics for the power model.

use serde::{Deserialize, Serialize};

/// Geometry and identity of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The paper's L1 data cache: 64 KB, 2-way.
    pub fn l1d_paper() -> Self {
        CacheConfig {
            size_bytes: 64 << 10,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// The paper's L1 instruction cache: 64 KB, 2-way.
    pub fn l1i_paper() -> Self {
        CacheConfig {
            size_bytes: 64 << 10,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// The paper's unified L2: 1 MB, direct mapped.
    pub fn l2_paper() -> Self {
        CacheConfig {
            size_bytes: 1 << 20,
            ways: 1,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `ways × line`).
    pub fn sets(&self) -> u64 {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.ways > 0);
        let per_way = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(
            per_way > 0 && per_way.is_power_of_two(),
            "cache sets must be a positive power of two, got {per_way}"
        );
        per_way
    }
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio, zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch (true LRU).
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache.
///
/// # Example
///
/// ```
/// use mcd_uarch::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1d_paper());
/// assert!(!l1.access(0x1000, false)); // cold miss
/// assert!(l1.access(0x1000, false));  // now resident
/// assert_eq!(l1.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    config.ways as usize
                ];
                sets as usize
            ],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let set = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        (set, tag)
    }

    /// Performs an access; returns `true` on hit. On a miss the line is
    /// allocated (write-allocate), evicting the LRU way; a dirty eviction is
    /// counted as a writeback.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= is_write;
            return true;
        }
        self.stats.misses += 1;
        // Victim: invalid way if any, else LRU.
        let victim = match ways.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .expect("ways is non-empty");
                i
            }
        };
        if ways[victim].valid && ways[victim].dirty {
            self.stats.writebacks += 1;
        }
        ways[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        false
    }

    /// Whether `addr` is currently resident (no state change, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Clears accumulated statistics (keeps contents) — used after cache
    /// warm-up so measured runs start with warm structures but clean counts.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates everything (keeps statistics).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
                line.dirty = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1d_paper().sets(), 512);
        assert_eq!(CacheConfig::l1i_paper().sets(), 512);
        assert_eq!(CacheConfig::l2_paper().sets(), 16 * 1024);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1d_paper());
        assert!(!c.access(0x40, false));
        assert!(c.access(0x40, false));
        assert!(c.access(0x7f, false), "same line");
        assert!(!c.access(0x80, false), "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way: fill both ways of a set, touch the first, then insert a
        // third conflicting line — the untouched way must be evicted.
        let cfg = CacheConfig::l1d_paper();
        let set_stride = cfg.sets() * cfg.line_bytes; // same set, new tag
        let mut c = Cache::new(cfg);
        c.access(0, false);
        c.access(set_stride, false);
        c.access(0, false); // refresh line A
        c.access(2 * set_stride, false); // evicts line B
        assert!(c.probe(0));
        assert!(!c.probe(set_stride));
        assert!(c.probe(2 * set_stride));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let cfg = CacheConfig::l2_paper(); // direct mapped: ways = 1
        let set_stride = cfg.sets() * cfg.line_bytes;
        let mut c = Cache::new(cfg);
        c.access(0, true); // dirty
        c.access(set_stride, false); // evicts dirty line
        assert_eq!(c.stats().writebacks, 1);
        c.access(2 * set_stride, false); // evicts clean line
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn hot_set_fits_in_l1() {
        // A 16 KB working set in a 64 KB cache: after warm-up, all hits.
        let mut c = Cache::new(CacheConfig::l1d_paper());
        for pass in 0..3 {
            for addr in (0..16 * 1024u64).step_by(64) {
                let hit = c.access(addr, false);
                if pass > 0 {
                    assert!(hit, "addr {addr:#x} should be resident");
                }
            }
        }
        assert_eq!(c.stats().misses, 256);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = Cache::new(CacheConfig::l1d_paper());
        c.access(0x1234, true);
        assert!(c.probe(0x1234));
        c.flush();
        assert!(!c.probe(0x1234));
    }

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
