//! Register renaming: map tables and physical register free lists.
//!
//! The paper splits SimpleScalar's RUU into a ROB, issue queues, and
//! physical register files of 72 integer + 72 floating-point registers
//! (Table 1). With 32 architectural registers of each class mapped at all
//! times, 40 of each are available for in-flight renaming.
//!
//! Because the simulator is trace-driven (wrong-path instructions are never
//! dispatched), no checkpoint/rollback machinery is needed: a physical
//! register is freed when the instruction that overwrote its architectural
//! register commits.

use mcd_workload::Reg;

/// A physical register, in a flat space: integer registers first, then
/// floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(u16);

impl PhysReg {
    /// Flat index, usable to key ready-time tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Renaming failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameError {
    /// No free integer physical register.
    OutOfIntRegs,
    /// No free floating-point physical register.
    OutOfFpRegs,
}

impl std::fmt::Display for RenameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenameError::OutOfIntRegs => write!(f, "no free integer physical register"),
            RenameError::OutOfFpRegs => write!(f, "no free floating-point physical register"),
        }
    }
}

impl std::error::Error for RenameError {}

/// The result of renaming a destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Renamed {
    /// Newly allocated physical destination.
    pub new: PhysReg,
    /// Previous mapping of the architectural register; free it when the
    /// renaming instruction commits.
    pub prev: PhysReg,
}

/// Map table plus free lists for both register classes.
///
/// # Example
///
/// ```
/// use mcd_uarch::RenameUnit;
/// use mcd_workload::Reg;
///
/// let mut rn = RenameUnit::paper();
/// let r1 = rn.lookup(Reg::int(1));
/// let renamed = rn.allocate(Reg::int(1)).expect("free registers available");
/// assert_eq!(renamed.prev, r1);
/// assert_ne!(rn.lookup(Reg::int(1)), r1);
/// ```
#[derive(Debug, Clone)]
pub struct RenameUnit {
    /// Arch-reg index (0..64) → current physical mapping.
    map: Vec<PhysReg>,
    free_int: Vec<PhysReg>,
    free_fp: Vec<PhysReg>,
    int_phys: u16,
    fp_phys: u16,
}

impl RenameUnit {
    /// Builds a rename unit with the paper's 72 + 72 physical registers.
    pub fn paper() -> Self {
        RenameUnit::new(72, 72)
    }

    /// Builds a rename unit with custom physical register file sizes.
    ///
    /// # Panics
    ///
    /// Panics unless each file has more physical than architectural
    /// registers (32 each).
    pub fn new(int_phys: u16, fp_phys: u16) -> Self {
        assert!(int_phys > 32, "need > 32 integer physical registers");
        assert!(fp_phys > 32, "need > 32 fp physical registers");
        // Initial mapping: arch int i → phys i; arch fp i → phys int_phys+i.
        let mut map = Vec::with_capacity(64);
        for i in 0..32u16 {
            map.push(PhysReg(i));
        }
        for i in 0..32u16 {
            map.push(PhysReg(int_phys + i));
        }
        let free_int = (32..int_phys).rev().map(PhysReg).collect();
        let free_fp = (int_phys + 32..int_phys + fp_phys)
            .rev()
            .map(PhysReg)
            .collect();
        RenameUnit {
            map,
            free_int,
            free_fp,
            int_phys,
            fp_phys,
        }
    }

    /// Total physical registers (both classes).
    pub fn total_phys(&self) -> usize {
        self.int_phys as usize + self.fp_phys as usize
    }

    /// Free integer physical registers remaining.
    pub fn free_int(&self) -> usize {
        self.free_int.len()
    }

    /// Free floating-point physical registers remaining.
    pub fn free_fp(&self) -> usize {
        self.free_fp.len()
    }

    /// Whether `phys` is a floating-point register.
    pub fn is_fp_phys(&self, phys: PhysReg) -> bool {
        phys.0 >= self.int_phys
    }

    /// Current mapping of an architectural register.
    pub fn lookup(&self, reg: Reg) -> PhysReg {
        self.map[reg.index()]
    }

    /// Allocates a new physical register for a write to `reg`.
    ///
    /// # Errors
    ///
    /// Returns [`RenameError`] if the class's free list is empty — the
    /// pipeline stalls rename in that case.
    pub fn allocate(&mut self, reg: Reg) -> Result<Renamed, RenameError> {
        let new = if reg.is_fp() {
            self.free_fp.pop().ok_or(RenameError::OutOfFpRegs)?
        } else {
            self.free_int.pop().ok_or(RenameError::OutOfIntRegs)?
        };
        let prev = self.map[reg.index()];
        self.map[reg.index()] = new;
        Ok(Renamed { new, prev })
    }

    /// Returns a physical register to its free list (at commit of the
    /// overwriting instruction).
    pub fn free(&mut self, phys: PhysReg) {
        if self.is_fp_phys(phys) {
            debug_assert!(!self.free_fp.contains(&phys), "double free of {phys:?}");
            self.free_fp.push(phys);
        } else {
            debug_assert!(!self.free_int.contains(&phys), "double free of {phys:?}");
            self.free_int.push(phys);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity() {
        let rn = RenameUnit::paper();
        assert_eq!(rn.free_int(), 40);
        assert_eq!(rn.free_fp(), 40);
    }

    #[test]
    fn initial_mapping_is_distinct() {
        let rn = RenameUnit::paper();
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            assert!(seen.insert(rn.lookup(Reg::int(i))));
            assert!(seen.insert(rn.lookup(Reg::fp(i))));
        }
    }

    #[test]
    fn allocate_changes_mapping_and_reports_prev() {
        let mut rn = RenameUnit::paper();
        let before = rn.lookup(Reg::fp(3));
        let r = rn.allocate(Reg::fp(3)).expect("free regs");
        assert_eq!(r.prev, before);
        assert_eq!(rn.lookup(Reg::fp(3)), r.new);
        assert!(rn.is_fp_phys(r.new));
        assert_eq!(rn.free_fp(), 39);
    }

    #[test]
    fn exhaustion_then_free_recovers() {
        let mut rn = RenameUnit::paper();
        let mut prevs = Vec::new();
        for i in 0..40 {
            prevs.push(
                rn.allocate(Reg::int((i % 24) as u8))
                    .expect("free regs")
                    .prev,
            );
        }
        assert_eq!(rn.allocate(Reg::int(0)), Err(RenameError::OutOfIntRegs));
        rn.free(prevs[0]);
        assert!(rn.allocate(Reg::int(0)).is_ok());
    }

    #[test]
    fn classes_do_not_interfere() {
        let mut rn = RenameUnit::paper();
        for i in 0..40 {
            rn.allocate(Reg::int((i % 24) as u8)).expect("free regs");
        }
        // Int exhausted; fp still fine.
        assert!(rn.allocate(Reg::int(0)).is_err());
        assert!(rn.allocate(Reg::fp(0)).is_ok());
    }
}
