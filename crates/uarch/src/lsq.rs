//! Load/store queue with conservative memory disambiguation and
//! store-to-load forwarding.
//!
//! Entries are allocated in program order at dispatch. A load may access the
//! data cache once its own address is known and every older store's address
//! is also known; if an older store to the same (8-byte-aligned) address
//! exists, the load is satisfied by forwarding inside the queue. Stores
//! access the cache at commit.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Stable, program-ordered identity of an LSQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LsqEntryId(u64);

impl LsqEntryId {
    /// Raw sequence number (program order among memory operations).
    pub fn sequence(self) -> u64 {
        self.0
    }
}

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemAccessKind {
    /// Memory read.
    Load,
    /// Memory write.
    Store,
}

/// The readiness of a load, as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadStatus {
    /// Address not yet computed.
    WaitingForAddress,
    /// An older store's address is unknown — conservative stall.
    WaitingForOlderStores,
    /// May access the cache.
    ReadyFromCache,
    /// Satisfied by an older in-queue store to the same address.
    ReadyForwarded {
        /// The forwarding store.
        store: LsqEntryId,
    },
    /// Already issued or completed.
    AlreadyIssued,
}

#[derive(Debug, Clone)]
struct Entry {
    id: LsqEntryId,
    kind: MemAccessKind,
    addr: Option<u64>,
    issued: bool,
}

/// The load/store queue (Table 1: 64 entries).
///
/// # Example
///
/// ```
/// use mcd_uarch::{LoadStoreQueue, MemAccessKind};
/// use mcd_uarch::lsq::LoadStatus;
///
/// let mut lsq = LoadStoreQueue::new(64);
/// let st = lsq.allocate(MemAccessKind::Store).expect("space");
/// let ld = lsq.allocate(MemAccessKind::Load).expect("space");
/// lsq.set_address(ld, 0x100);
/// // The older store's address is unknown: the load must wait.
/// assert_eq!(lsq.load_status(ld), LoadStatus::WaitingForOlderStores);
/// lsq.set_address(st, 0x100);
/// assert_eq!(lsq.load_status(ld), LoadStatus::ReadyForwarded { store: st });
/// ```
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    entries: VecDeque<Entry>,
    capacity: usize,
    next_id: u64,
    forwards: u64,
}

impl LoadStoreQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ capacity must be positive");
        LoadStoreQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            next_id: 0,
            forwards: 0,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Count of loads satisfied by forwarding.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Allocates an entry in program order.
    ///
    /// # Errors
    ///
    /// Returns `None` if the queue is full — dispatch stalls.
    pub fn allocate(&mut self, kind: MemAccessKind) -> Option<LsqEntryId> {
        if self.is_full() {
            return None;
        }
        let id = LsqEntryId(self.next_id);
        self.next_id += 1;
        self.entries.push_back(Entry {
            id,
            kind,
            addr: None,
            issued: false,
        });
        Some(id)
    }

    fn position(&self, id: LsqEntryId) -> Option<usize> {
        // Entries are ordered by id; binary search by sequence.
        self.entries.binary_search_by_key(&id.0, |e| e.id.0).ok()
    }

    /// Records the computed effective address of an entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry is no longer in the queue.
    pub fn set_address(&mut self, id: LsqEntryId, addr: u64) {
        let pos = self.position(id).expect("entry is in the queue");
        self.entries[pos].addr = Some(addr);
    }

    /// The scheduler's view of a load.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not in the queue or is not a load.
    pub fn load_status(&self, id: LsqEntryId) -> LoadStatus {
        let pos = self.position(id).expect("entry is in the queue");
        let entry = &self.entries[pos];
        assert_eq!(entry.kind, MemAccessKind::Load, "load_status on a store");
        if entry.issued {
            return LoadStatus::AlreadyIssued;
        }
        let Some(addr) = entry.addr else {
            return LoadStatus::WaitingForAddress;
        };
        let line = addr & !7;
        let mut forwarding = None;
        for older in self.entries.iter().take(pos) {
            if older.kind != MemAccessKind::Store {
                continue;
            }
            match older.addr {
                None => return LoadStatus::WaitingForOlderStores,
                Some(a) if (a & !7) == line => forwarding = Some(older.id),
                Some(_) => {}
            }
        }
        match forwarding {
            Some(store) => LoadStatus::ReadyForwarded { store },
            None => LoadStatus::ReadyFromCache,
        }
    }

    /// Marks a load as issued (forwarded loads count toward the forwarding
    /// statistic).
    ///
    /// # Panics
    ///
    /// Panics if the entry is absent or already issued.
    pub fn mark_issued(&mut self, id: LsqEntryId, forwarded: bool) {
        let pos = self.position(id).expect("entry is in the queue");
        assert!(!self.entries[pos].issued, "entry issued twice");
        self.entries[pos].issued = true;
        if forwarded {
            self.forwards += 1;
        }
    }

    /// Removes the oldest entry; memory operations commit in program order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the oldest entry.
    pub fn release_oldest(&mut self, id: LsqEntryId) {
        let front = self.entries.front().expect("queue not empty");
        assert_eq!(front.id, id, "memory ops must release in program order");
        self.entries.pop_front();
    }

    /// The committed store's address (needed for the cache write at commit).
    ///
    /// # Panics
    ///
    /// Panics if the entry is absent or has no address yet.
    pub fn address_of(&self, id: LsqEntryId) -> u64 {
        let pos = self.position(id).expect("entry is in the queue");
        self.entries[pos].addr.expect("address was computed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut lsq = LoadStoreQueue::new(2);
        assert!(lsq.allocate(MemAccessKind::Load).is_some());
        assert!(lsq.allocate(MemAccessKind::Store).is_some());
        assert!(lsq.allocate(MemAccessKind::Load).is_none());
    }

    #[test]
    fn load_with_no_older_stores_hits_cache() {
        let mut lsq = LoadStoreQueue::new(8);
        let ld = lsq.allocate(MemAccessKind::Load).expect("space");
        assert_eq!(lsq.load_status(ld), LoadStatus::WaitingForAddress);
        lsq.set_address(ld, 0x40);
        assert_eq!(lsq.load_status(ld), LoadStatus::ReadyFromCache);
    }

    #[test]
    fn conservative_disambiguation() {
        let mut lsq = LoadStoreQueue::new(8);
        let st = lsq.allocate(MemAccessKind::Store).expect("space");
        let ld = lsq.allocate(MemAccessKind::Load).expect("space");
        lsq.set_address(ld, 0x100);
        assert_eq!(lsq.load_status(ld), LoadStatus::WaitingForOlderStores);
        lsq.set_address(st, 0x900); // different address
        assert_eq!(lsq.load_status(ld), LoadStatus::ReadyFromCache);
    }

    #[test]
    fn forwarding_from_matching_store() {
        let mut lsq = LoadStoreQueue::new(8);
        let st1 = lsq.allocate(MemAccessKind::Store).expect("space");
        let st2 = lsq.allocate(MemAccessKind::Store).expect("space");
        let ld = lsq.allocate(MemAccessKind::Load).expect("space");
        lsq.set_address(st1, 0x200);
        lsq.set_address(st2, 0x200);
        lsq.set_address(ld, 0x204); // same 8-byte word as 0x200? No: 0x204 & !7 = 0x200.
        assert_eq!(
            lsq.load_status(ld),
            LoadStatus::ReadyForwarded { store: st2 }
        );
        lsq.mark_issued(ld, true);
        assert_eq!(lsq.forwards(), 1);
        assert_eq!(lsq.load_status(ld), LoadStatus::AlreadyIssued);
    }

    #[test]
    fn younger_store_does_not_forward() {
        let mut lsq = LoadStoreQueue::new(8);
        let ld = lsq.allocate(MemAccessKind::Load).expect("space");
        let st = lsq.allocate(MemAccessKind::Store).expect("space");
        lsq.set_address(ld, 0x300);
        lsq.set_address(st, 0x300);
        assert_eq!(lsq.load_status(ld), LoadStatus::ReadyFromCache);
    }

    #[test]
    fn release_in_order() {
        let mut lsq = LoadStoreQueue::new(4);
        let a = lsq.allocate(MemAccessKind::Load).expect("space");
        let b = lsq.allocate(MemAccessKind::Store).expect("space");
        lsq.release_oldest(a);
        lsq.release_oldest(b);
        assert!(lsq.is_empty());
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_release_panics() {
        let mut lsq = LoadStoreQueue::new(4);
        let _a = lsq.allocate(MemAccessKind::Load).expect("space");
        let b = lsq.allocate(MemAccessKind::Store).expect("space");
        lsq.release_oldest(b);
    }

    #[test]
    fn address_of_committed_store() {
        let mut lsq = LoadStoreQueue::new(4);
        let st = lsq.allocate(MemAccessKind::Store).expect("space");
        lsq.set_address(st, 0xabc0);
        assert_eq!(lsq.address_of(st), 0xabc0);
    }
}
