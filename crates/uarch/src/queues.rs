//! Queue structures shared by pipeline stages.
//!
//! [`CircularQueue`] models in-order structures (fetch queue, reorder
//! buffer); [`SlotPool`] models out-of-order structures (issue queues) where
//! entries leave in arbitrary order but capacity is fixed.

/// A bounded FIFO with stable capacity, used for the fetch queue and ROB.
///
/// # Example
///
/// ```
/// use mcd_uarch::CircularQueue;
///
/// let mut q = CircularQueue::new(2);
/// assert!(q.push_back('a').is_ok());
/// assert!(q.push_back('b').is_ok());
/// assert!(q.push_back('c').is_err()); // full
/// assert_eq!(q.pop_front(), Some('a'));
/// ```
#[derive(Debug, Clone)]
pub struct CircularQueue<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
}

impl<T> CircularQueue<T> {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        CircularQueue {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Appends an item.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is full.
    pub fn push_back(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Removes and returns the oldest item.
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest item, if any.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates oldest-first, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// A stable token naming an occupied [`SlotPool`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotToken(usize);

impl SlotToken {
    /// Raw slot index (for debugging / stats only).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A fixed-capacity pool with stable slots and arbitrary-order removal,
/// used for issue queues.
///
/// # Example
///
/// ```
/// use mcd_uarch::SlotPool;
///
/// let mut iq: SlotPool<&str> = SlotPool::new(20);
/// let t = iq.insert("add").expect("space available");
/// assert_eq!(iq.len(), 1);
/// assert_eq!(iq.remove(t), "add");
/// assert!(iq.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SlotPool<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> SlotPool<T> {
    /// Creates an empty pool with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        SlotPool {
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            len: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the pool is full.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Inserts an entry, returning its token.
    ///
    /// # Errors
    ///
    /// Returns the entry back if the pool is full.
    pub fn insert(&mut self, item: T) -> Result<SlotToken, T> {
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(item);
                self.len += 1;
                Ok(SlotToken(i))
            }
            None => Err(item),
        }
    }

    /// Removes the entry at `token`.
    ///
    /// # Panics
    ///
    /// Panics if the token does not name an occupied slot (tokens are
    /// single-use).
    pub fn remove(&mut self, token: SlotToken) -> T {
        let item = self.slots[token.0]
            .take()
            .expect("token names an occupied slot");
        self.free.push(token.0);
        self.len -= 1;
        item
    }

    /// Shared access to the entry at `token`.
    pub fn get(&self, token: SlotToken) -> Option<&T> {
        self.slots.get(token.0).and_then(|s| s.as_ref())
    }

    /// Mutable access to the entry at `token`.
    pub fn get_mut(&mut self, token: SlotToken) -> Option<&mut T> {
        self.slots.get_mut(token.0).and_then(|s| s.as_mut())
    }

    /// Iterates occupied slots (arbitrary order) with their tokens.
    pub fn iter(&self) -> impl Iterator<Item = (SlotToken, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (SlotToken(i), v)))
    }

    /// Iterates occupied slots mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SlotToken, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (SlotToken(i), v)))
    }
}

/// A bounded queue of sequence numbers held in ascending (age) order.
///
/// Issue queues need exactly three operations per cycle: walk entries
/// oldest-first, insert newly dispatched entries, and remove issued ones.
/// Dispatch hands out sequence numbers monotonically, so a plain sorted
/// vector gives oldest-first iteration for free — no per-cycle sort, no
/// token bookkeeping — while removal is a binary search plus a short shift
/// within a cache line or two.
///
/// # Example
///
/// ```
/// use mcd_uarch::AgeQueue;
///
/// let mut iq = AgeQueue::new(4);
/// iq.push(10).expect("space");
/// iq.push(11).expect("space");
/// iq.remove(10);
/// assert_eq!(iq.as_slice(), &[11]);
/// ```
#[derive(Debug, Clone)]
pub struct AgeQueue {
    seqs: Vec<u64>,
    capacity: usize,
}

impl AgeQueue {
    /// Creates an empty queue with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        AgeQueue {
            seqs: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.seqs.len() == self.capacity
    }

    /// Appends a sequence number.
    ///
    /// # Errors
    ///
    /// Returns the value back if the queue is full.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `seq` is not greater than every entry
    /// already present — insertion order is the age order.
    pub fn push(&mut self, seq: u64) -> Result<(), u64> {
        if self.is_full() {
            return Err(seq);
        }
        debug_assert!(
            self.seqs.last().is_none_or(|&last| last < seq),
            "sequence numbers must arrive in increasing order"
        );
        self.seqs.push(seq);
        Ok(())
    }

    /// Removes a sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not present.
    pub fn remove(&mut self, seq: u64) {
        let i = self.seqs.binary_search(&seq).expect("entry is present");
        self.seqs.remove(i);
    }

    /// The entries, oldest first.
    pub fn as_slice(&self) -> &[u64] {
        &self.seqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_fifo_order() {
        let mut q = CircularQueue::new(4);
        for i in 0..4 {
            q.push_back(i).expect("space");
        }
        assert!(q.is_full());
        assert_eq!(q.push_back(9), Err(9));
        for i in 0..4 {
            assert_eq!(q.pop_front(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn circular_free_tracks_occupancy() {
        let mut q = CircularQueue::new(3);
        assert_eq!(q.free(), 3);
        q.push_back(1).expect("space");
        assert_eq!(q.free(), 2);
        q.pop_front();
        assert_eq!(q.free(), 3);
    }

    #[test]
    fn slot_pool_insert_remove_arbitrary_order() {
        let mut p = SlotPool::new(3);
        let a = p.insert("a").expect("space");
        let b = p.insert("b").expect("space");
        let c = p.insert("c").expect("space");
        assert!(p.is_full());
        assert_eq!(p.remove(b), "b");
        let d = p.insert("d").expect("space after removal");
        assert_eq!(p.get(d), Some(&"d"));
        assert_eq!(p.remove(a), "a");
        assert_eq!(p.remove(c), "c");
        assert_eq!(p.remove(d), "d");
        assert!(p.is_empty());
    }

    #[test]
    fn slot_pool_full_returns_item() {
        let mut p = SlotPool::new(1);
        p.insert(1).expect("space");
        assert_eq!(p.insert(2), Err(2));
    }

    #[test]
    fn slot_pool_iter_sees_all_live_entries() {
        let mut p = SlotPool::new(4);
        let a = p.insert(10).expect("space");
        p.insert(20).expect("space");
        p.remove(a);
        let values: Vec<i32> = p.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![20]);
    }

    #[test]
    #[should_panic(expected = "token names an occupied slot")]
    fn slot_pool_double_remove_panics() {
        let mut p = SlotPool::new(2);
        let t = p.insert(1).expect("space");
        p.remove(t);
        p.remove(t);
    }

    #[test]
    fn age_queue_keeps_oldest_first_across_removals() {
        let mut q = AgeQueue::new(4);
        for seq in [3u64, 7, 9, 12] {
            q.push(seq).expect("space");
        }
        assert!(q.is_full());
        assert_eq!(q.push(13), Err(13));
        q.remove(7);
        assert_eq!(q.as_slice(), &[3, 9, 12]);
        q.push(13).expect("space after removal");
        assert_eq!(q.as_slice(), &[3, 9, 12, 13]);
        q.remove(3);
        q.remove(13);
        assert_eq!(q.as_slice(), &[9, 12]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "entry is present")]
    fn age_queue_remove_of_absent_entry_panics() {
        let mut q = AgeQueue::new(2);
        q.push(1).expect("space");
        q.remove(2);
    }
}
