//! Property-based tests for the microarchitectural structures.

use proptest::prelude::*;

use mcd_uarch::lsq::LoadStatus;
use mcd_uarch::{
    Cache, CacheConfig, CircularQueue, LoadStoreQueue, MemAccessKind, RenameUnit, SlotPool,
};
use mcd_workload::Reg;

proptest! {
    #[test]
    fn cache_access_then_probe_always_hits(addrs in proptest::collection::vec(0u64..1 << 32, 1..200)) {
        let mut cache = Cache::new(CacheConfig::l1d_paper());
        for addr in &addrs {
            cache.access(*addr, false);
            prop_assert!(cache.probe(*addr), "address {addr:#x} just accessed");
        }
        let stats = cache.stats();
        prop_assert!(stats.misses <= stats.accesses);
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
    }

    #[test]
    fn cache_within_one_set_never_thrashes_below_assoc(base in 0u64..1 << 20) {
        // Two distinct lines fit the 2-way L1: alternating between them
        // after warm-up never misses.
        let stride = CacheConfig::l1d_paper().sets() * 64;
        let mut cache = Cache::new(CacheConfig::l1d_paper());
        let (a, b) = (base * 64, base * 64 + stride);
        cache.access(a, false);
        cache.access(b, false);
        for i in 0..20 {
            let addr = if i % 2 == 0 { a } else { b };
            prop_assert!(cache.access(addr, false));
        }
    }

    #[test]
    fn circular_queue_is_fifo(ops in proptest::collection::vec(any::<Option<u8>>(), 1..100)) {
        let mut queue = CircularQueue::new(8);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let ours = queue.push_back(v);
                    if model.len() < 8 {
                        model.push_back(v);
                        prop_assert!(ours.is_ok());
                    } else {
                        prop_assert!(ours.is_err());
                    }
                }
                None => {
                    prop_assert_eq!(queue.pop_front(), model.pop_front());
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
    }

    #[test]
    fn slot_pool_preserves_contents(values in proptest::collection::vec(any::<u32>(), 1..40)) {
        let mut pool = SlotPool::new(64);
        let tokens: Vec<_> = values
            .iter()
            .map(|v| pool.insert(*v).expect("capacity is sufficient"))
            .collect();
        prop_assert_eq!(pool.len(), values.len());
        let mut recovered: Vec<u32> = tokens.into_iter().map(|t| pool.remove(t)).collect();
        recovered.sort_unstable();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(recovered, expected);
        prop_assert!(pool.is_empty());
    }

    #[test]
    fn rename_allocate_free_conserves_registers(
        writes in proptest::collection::vec(0u8..32, 1..60),
    ) {
        let mut rn = RenameUnit::paper();
        let initial_free = rn.free_int();
        let mut pending = Vec::new();
        for w in writes {
            if rn.free_int() == 0 {
                break;
            }
            pending.push(rn.allocate(Reg::int(w)).expect("checked free list").prev);
        }
        let allocated = pending.len();
        prop_assert_eq!(rn.free_int(), initial_free - allocated);
        for prev in pending {
            rn.free(prev);
        }
        prop_assert_eq!(rn.free_int(), initial_free);
    }

    #[test]
    fn lsq_forwarding_matches_a_naive_model(
        ops in proptest::collection::vec((any::<bool>(), 0u64..16), 1..40),
    ) {
        // Addresses restricted to 16 words so forwarding actually occurs.
        let mut lsq = LoadStoreQueue::new(64);
        let mut entries = Vec::new();
        for (is_store, word) in &ops {
            let kind = if *is_store { MemAccessKind::Store } else { MemAccessKind::Load };
            let id = lsq.allocate(kind).expect("capacity 64 is enough");
            lsq.set_address(id, word * 8);
            entries.push((id, *is_store, word * 8));
        }
        for (i, (id, is_store, addr)) in entries.iter().enumerate() {
            if *is_store {
                continue;
            }
            // Naive model: the youngest older store to the same address.
            let expected = entries[..i]
                .iter()
                .rev()
                .find(|(_, s, a)| *s && a == addr)
                .map(|(sid, _, _)| *sid);
            match lsq.load_status(*id) {
                LoadStatus::ReadyForwarded { store } => prop_assert_eq!(Some(store), expected),
                LoadStatus::ReadyFromCache => prop_assert_eq!(expected, None),
                other => prop_assert!(false, "unexpected status {other:?}"),
            }
        }
    }
}
