//! Energy parameters: Wattch-style per-access energies plus per-domain
//! clock-tree and gated-idle costs.
//!
//! Absolute joules are irrelevant to every figure in the paper (all results
//! are ratios against the baseline machine), so energies are expressed in
//! arbitrary *energy units* at the nominal operating point (1.2 V). The
//! relative magnitudes are calibrated so the resulting domain breakdown
//! matches what the paper states: the front end dissipates ≈ 20 % of chip
//! energy, the integer domain is the largest consumer for integer codes, and
//! idle domains are aggressively clock-gated but still burn a floor of
//! roughly 15 % (Wattch's `cc3` conditional-clocking style) plus their local
//! clock tree.

use serde::{Deserialize, Serialize};

use mcd_pipeline::{DomainId, Unit};
use mcd_time::Voltage;

/// The energy model's constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy units per access, per structure, at nominal voltage.
    pub unit_access: Vec<f64>,
    /// Clock-tree energy units per clock cycle, per domain.
    pub clock_per_cycle: [f64; DomainId::COUNT],
    /// Gated-idle floor energy units per clock cycle, per domain
    /// (residual switching of gated units, cc3-style).
    pub idle_floor_per_cycle: [f64; DomainId::COUNT],
    /// The voltage at which the unit energies are specified.
    pub v_nominal: Voltage,
}

impl EnergyParams {
    /// The calibrated default model.
    pub fn wattch_like() -> Self {
        let mut unit_access = vec![0.0; Unit::COUNT];
        let mut set = |u: Unit, e: f64| unit_access[u.index()] = e;
        // Front end.
        set(Unit::Bpred, 4.0);
        set(Unit::ICache, 9.0);
        set(Unit::Rename, 5.5);
        set(Unit::Rob, 4.5);
        // Integer domain.
        set(Unit::IqInt, 6.5);
        set(Unit::RegInt, 6.5);
        set(Unit::AluInt, 12.0);
        set(Unit::MulInt, 18.0);
        set(Unit::BusInt, 5.0);
        // Floating-point domain.
        set(Unit::IqFp, 6.5);
        set(Unit::RegFp, 6.5);
        set(Unit::AluFp, 16.0);
        set(Unit::MulFp, 21.0);
        set(Unit::BusFp, 4.0);
        // Load/store domain.
        set(Unit::Lsq, 6.5);
        set(Unit::Dcache, 14.0);
        set(Unit::L2, 36.0);
        set(Unit::BusLs, 5.0);
        EnergyParams {
            unit_access,
            // [front end, integer, fp, load/store]. The FP domain carries
            // the largest cycle-proportional cost relative to its activity:
            // its wide datapaths are clock-gated when idle but the local
            // clock tree and gated residual still burn — which is exactly
            // the energy per-domain scaling reclaims on integer codes.
            clock_per_cycle: [3.0, 4.5, 8.5, 4.0],
            idle_floor_per_cycle: [1.2, 2.5, 8.0, 2.0],
            v_nominal: Voltage::NOMINAL,
        }
    }

    /// Per-access energy of one structure.
    pub fn access_energy(&self, unit: Unit) -> f64 {
        self.unit_access[unit.index()]
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a message if any energy is negative or non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.unit_access.len() != Unit::COUNT {
            return Err(format!(
                "expected {} unit energies, got {}",
                Unit::COUNT,
                self.unit_access.len()
            ));
        }
        let all = self
            .unit_access
            .iter()
            .chain(self.clock_per_cycle.iter())
            .chain(self.idle_floor_per_cycle.iter());
        for (i, e) in all.enumerate() {
            if !e.is_finite() || *e < 0.0 {
                return Err(format!("energy parameter {i} invalid: {e}"));
            }
        }
        Ok(())
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::wattch_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        assert!(EnergyParams::wattch_like().validate().is_ok());
    }

    #[test]
    fn l2_is_most_expensive_access() {
        let p = EnergyParams::wattch_like();
        for u in Unit::ALL {
            if u != Unit::L2 {
                assert!(p.access_energy(u) < p.access_energy(Unit::L2));
            }
        }
    }

    #[test]
    fn validation_rejects_negative() {
        let mut p = EnergyParams::wattch_like();
        p.clock_per_cycle[0] = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_wrong_length() {
        let mut p = EnergyParams::wattch_like();
        p.unit_access.pop();
        assert!(p.validate().is_err());
    }
}
