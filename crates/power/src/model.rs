//! Turning activity records into energy numbers.
//!
//! Three components per domain, all scaling with the square of the
//! instantaneous supply voltage:
//!
//! * **activity energy** — per-access energies weighted by `V²` at access
//!   time (the pipeline records `Σ V²` per structure);
//! * **clock-tree energy** — one clock-capacitance charge per produced
//!   clock edge (`Σ V²` over cycles, recorded by each domain clock);
//! * **gated-idle floor** — residual switching of clock-gated units,
//!   charged per cycle (Wattch `cc3`: idle structures still burn a fixed
//!   fraction of their maximum power).
//!
//! Frequency enters implicitly: a slower clock produces fewer cycles in the
//! same wall time, shrinking the cycle-proportional terms, and voltage
//! scaling shrinks everything quadratically — exactly the `C·V²·f` physics
//! the paper relies on.

use serde::{Deserialize, Serialize};

use mcd_pipeline::{DomainId, RunResult, Unit};

use crate::params::EnergyParams;

/// Energy attribution for one run, in model energy units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Per-structure activity energy.
    pub by_unit: Vec<f64>,
    /// Per-domain clock-tree energy.
    pub clock: [f64; DomainId::COUNT],
    /// Per-domain gated-idle floor energy.
    pub idle_floor: [f64; DomainId::COUNT],
}

impl EnergyBreakdown {
    /// Activity energy of one structure.
    pub fn unit(&self, unit: Unit) -> f64 {
        self.by_unit[unit.index()]
    }

    /// Total energy of one domain (activity + clock + idle floor).
    pub fn domain(&self, domain: DomainId) -> f64 {
        let activity: f64 = Unit::ALL
            .iter()
            .filter(|u| u.domain() == domain)
            .map(|u| self.by_unit[u.index()])
            .sum();
        activity + self.clock[domain.index()] + self.idle_floor[domain.index()]
    }

    /// Whole-chip energy.
    pub fn total(&self) -> f64 {
        DomainId::ALL.iter().map(|d| self.domain(*d)).sum()
    }

    /// Fraction of chip energy dissipated in `domain`. A zero-energy
    /// breakdown (zero-instruction or fully-gated run) has no meaningful
    /// shares; every domain reports 0.0 rather than NaN.
    pub fn domain_share(&self, domain: DomainId) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        self.domain(domain) / total
    }
}

/// The energy model.
///
/// # Example
///
/// ```
/// use mcd_pipeline::{simulate, MachineConfig};
/// use mcd_power::PowerModel;
/// use mcd_workload::suites;
///
/// let profile = suites::by_name("adpcm").expect("known benchmark");
/// let result = simulate(&MachineConfig::baseline(1), &profile, 2_000);
/// let energy = PowerModel::paper_calibrated().energy_of(&result);
/// assert!(energy.total() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    params: EnergyParams,
}

impl PowerModel {
    /// Builds a model with the calibrated default parameters.
    pub fn paper_calibrated() -> Self {
        PowerModel {
            params: EnergyParams::wattch_like(),
        }
    }

    /// Builds a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail validation.
    pub fn new(params: EnergyParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid energy parameters: {e}");
        }
        PowerModel { params }
    }

    /// The model's parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Attributes energy to a finished run.
    ///
    /// The pipeline records voltage-squared-weighted activity, so this is a
    /// pure post-processing step: no voltage information is needed here
    /// beyond the nominal reference.
    pub fn energy_of(&self, result: &RunResult) -> EnergyBreakdown {
        let vnom2 = self.params.v_nominal.as_volts() * self.params.v_nominal.as_volts();
        let by_unit = Unit::ALL
            .iter()
            .map(|u| self.params.access_energy(*u) * result.ledger.weighted_v2(*u) / vnom2)
            .collect();
        let mut clock = [0.0; DomainId::COUNT];
        let mut idle_floor = [0.0; DomainId::COUNT];
        for d in DomainId::ALL {
            let v2_cycles = result.domain_v2_cycles[d.index()] / vnom2;
            clock[d.index()] = self.params.clock_per_cycle[d.index()] * v2_cycles;
            idle_floor[d.index()] = self.params.idle_floor_per_cycle[d.index()] * v2_cycles;
        }
        EnergyBreakdown {
            by_unit,
            clock,
            idle_floor,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_pipeline::{simulate, MachineConfig};
    use mcd_time::{Frequency, VfTable};
    use mcd_workload::suites;

    const N: u64 = 20_000;

    fn profile(name: &str) -> mcd_workload::BenchmarkProfile {
        suites::by_name(name).expect("known benchmark")
    }

    #[test]
    fn front_end_share_matches_paper() {
        // §3.2: "the front end typically accounts for 20% of the total chip
        // energy".
        let model = PowerModel::paper_calibrated();
        let mut shares = Vec::new();
        for name in ["adpcm", "gcc", "g721", "swim", "art", "mcf"] {
            let r = simulate(&MachineConfig::baseline(1), &profile(name), N);
            shares.push(model.energy_of(&r).domain_share(DomainId::FrontEnd));
        }
        let avg = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!((0.14..=0.27).contains(&avg), "front-end share {avg}");
    }

    #[test]
    fn integer_domain_dominates_integer_codes() {
        let model = PowerModel::paper_calibrated();
        let r = simulate(&MachineConfig::baseline(1), &profile("bzip2"), N);
        let e = model.energy_of(&r);
        let int = e.domain(DomainId::Integer);
        for d in [
            DomainId::FrontEnd,
            DomainId::FloatingPoint,
            DomainId::LoadStore,
        ] {
            assert!(
                int > e.domain(d),
                "integer should dominate, {d} = {}",
                e.domain(d)
            );
        }
    }

    #[test]
    fn gated_fp_domain_is_small_but_nonzero_for_integer_code() {
        let model = PowerModel::paper_calibrated();
        let r = simulate(&MachineConfig::baseline(1), &profile("gcc"), N);
        let e = model.energy_of(&r);
        let fp_share = e.domain_share(DomainId::FloatingPoint);
        assert!(
            fp_share > 0.02,
            "clock + idle floor still burn energy: {fp_share}"
        );
        assert!(
            fp_share < 0.28,
            "gated FP must stay below the integer share: {fp_share}"
        );
    }

    #[test]
    fn fp_code_spends_more_in_fp_domain() {
        let model = PowerModel::paper_calibrated();
        let int_run = simulate(&MachineConfig::baseline(1), &profile("gcc"), N);
        let fp_run = simulate(&MachineConfig::baseline(1), &profile("swim"), N);
        let int_share = model
            .energy_of(&int_run)
            .domain_share(DomainId::FloatingPoint);
        let fp_share = model
            .energy_of(&fp_run)
            .domain_share(DomainId::FloatingPoint);
        assert!(
            fp_share > 1.25 * int_share,
            "swim {fp_share} vs gcc {int_share}"
        );
    }

    #[test]
    fn global_scaling_matches_analytic_v_squared() {
        // The paper's sanity check: energy of the globally scaled machine
        // agrees with the baseline scaled by the square of the voltage
        // ratio, within ~2 %.
        let model = PowerModel::paper_calibrated();
        let freq = Frequency::from_mhz(700);
        let base = simulate(&MachineConfig::baseline(1), &profile("g721"), N);
        let scaled = simulate(&MachineConfig::global(1, freq), &profile("g721"), N);
        let e_base = model.energy_of(&base).total();
        let e_scaled = model.energy_of(&scaled).total();
        let v = VfTable::paper().voltage_for(freq);
        let analytic = e_base * v.squared_ratio_to(mcd_time::Voltage::NOMINAL);
        let err = (e_scaled - analytic).abs() / analytic;
        assert!(
            err < 0.02,
            "measured {e_scaled}, analytic {analytic}, err {err}"
        );
    }

    #[test]
    fn scaling_down_saves_energy() {
        let model = PowerModel::paper_calibrated();
        let base = simulate(&MachineConfig::baseline(1), &profile("adpcm"), N);
        let slow = simulate(
            &MachineConfig::global(1, Frequency::MIN_SCALED),
            &profile("adpcm"),
            N,
        );
        let e_base = model.energy_of(&base).total();
        let e_slow = model.energy_of(&slow).total();
        // V drops 1.2 → 0.65: energy ≈ 29 % of baseline.
        let ratio = e_slow / e_base;
        assert!(ratio < 0.35 && ratio > 0.22, "ratio {ratio}");
    }

    #[test]
    fn zero_energy_breakdown_has_zero_shares_not_nan() {
        // Regression: a fully-gated / zero-instruction breakdown used to
        // report NaN shares (0/0); every domain must report exactly 0.0.
        let e = EnergyBreakdown {
            by_unit: vec![0.0; Unit::ALL.len()],
            clock: [0.0; DomainId::COUNT],
            idle_floor: [0.0; DomainId::COUNT],
        };
        assert_eq!(e.total(), 0.0);
        for d in DomainId::ALL {
            let share = e.domain_share(d);
            assert!(share == 0.0, "{d} share must be 0.0, got {share}");
        }
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let model = PowerModel::paper_calibrated();
        let r = simulate(&MachineConfig::baseline(1), &profile("epic"), 5_000);
        let e = model.energy_of(&r);
        let domain_sum: f64 = DomainId::ALL.iter().map(|d| e.domain(*d)).sum();
        assert!((domain_sum - e.total()).abs() < 1e-9 * e.total());
        let share_sum: f64 = DomainId::ALL.iter().map(|d| e.domain_share(*d)).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }
}
