//! Wattch-style architectural power model for the MCD simulator.
//!
//! The pipeline (`mcd-pipeline`) records *activity*: voltage-squared-weighted
//! access counts per structure and per-domain clock cycles. This crate turns
//! those records into energy numbers with a calibrated set of per-access
//! energies, per-domain clock-tree capacitances, and a clock-gated idle
//! floor (Wattch's `cc3` style).
//!
//! ```
//! use mcd_pipeline::{simulate, MachineConfig};
//! use mcd_power::{PowerModel, EnergyParams};
//! use mcd_workload::suites;
//!
//! let profile = suites::by_name("gcc").expect("known benchmark");
//! let run = simulate(&MachineConfig::baseline(1), &profile, 2_000);
//! let breakdown = PowerModel::new(EnergyParams::wattch_like()).energy_of(&run);
//! let fe = breakdown.domain_share(mcd_pipeline::DomainId::FrontEnd);
//! assert!(fe > 0.0 && fe < 1.0);
//! ```

pub mod model;
pub mod params;

pub use model::{EnergyBreakdown, PowerModel};
pub use params::EnergyParams;
