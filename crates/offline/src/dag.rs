//! Dependence-DAG construction from a full-speed event trace.
//!
//! §3.2: the trace is cut into 50 K-cycle intervals; for each interval a DAG
//! is built whose nodes are primitive events (fetch, dispatch, address
//! calculation, memory access, execute, commit) and whose edges are data
//! dependences, intra-instruction pipeline order, and functional dependences
//! that capture the limited size of the fetch queue, ROB, issue queues and
//! load/store queue ("in the fetch queue, event *i* depends on event
//! *i − k*, where *k* is the size of the queue").
//!
//! Edge slack is measured from the recorded event times; edges whose
//! measured slack would be negative (an artifact of approximating a
//! queue-departure constraint with the corresponding event's *end* time) are
//! dropped — this only makes the subsequent shaker more conservative.
//!
//! The DAG is stored analysis-friendly rather than builder-friendly:
//! adjacency is a flat CSR arena (one offset array + one edge array per
//! direction, built in two passes over the edge list) and the fields the
//! shaker mutates on every visit (`start`/`end`/`scale`/`power`) live in
//! parallel arrays so the passes stream through contiguous memory instead
//! of chasing one heap allocation per node.

use mcd_pipeline::{DomainId, EventKind, InstrTrace, PipelineConfig};
use mcd_time::Femtos;
use mcd_workload::OpClass;

/// One primitive event, as fed to [`IntervalDag::from_events`] (and as
/// returned by [`IntervalDag::node`] for inspection).
#[derive(Debug, Clone)]
pub struct Node {
    /// Instruction sequence number this event belongs to.
    pub instr: u64,
    /// Which primitive event this is.
    pub kind: EventKind,
    /// The clock domain that executes the event.
    pub domain: DomainId,
    /// Original (measured) start time.
    pub orig_start: Femtos,
    /// Original (measured) end time.
    pub orig_end: Femtos,
    /// Current start (mutated by the shaker).
    pub start: Femtos,
    /// Current end (mutated by the shaker).
    pub end: Femtos,
    /// Stretch factor (1.0 = full speed, up to the ¼-frequency cap).
    pub scale: f64,
    /// Relative power factor (initialized from the domain's share, divided
    /// by `scale²` as the event is stretched).
    pub power: f64,
    /// Whether the shaker may stretch this event (front-end events and
    /// commits are not scaled, matching the paper).
    pub scalable: bool,
    /// Clock cycles of the owning domain actually consumed by the event.
    /// Usually `duration × f_base`, but a memory access that misses to main
    /// memory only occupies the load/store clock for the L1 + L2 pipeline
    /// portion — the DRAM part is frequency-invariant and must not force
    /// the domain to stay fast.
    pub domain_cycles: f64,
}

impl Node {
    /// Original duration of the event.
    pub fn orig_duration(&self) -> Femtos {
        self.orig_end - self.orig_start
    }

    /// Current (possibly stretched) duration.
    pub fn duration(&self) -> Femtos {
        self.end - self.start
    }
}

/// Static per-node attributes the shaker only reads.
#[derive(Debug, Clone)]
pub(crate) struct NodeMeta {
    pub instr: u64,
    pub kind: EventKind,
    pub domain: DomainId,
    pub orig_start: Femtos,
    pub orig_end: Femtos,
    pub scalable: bool,
    pub domain_cycles: f64,
}

/// A dependence DAG covering one analysis interval.
///
/// Node attributes are split struct-of-arrays: the immutable metadata in
/// `meta` and the four shaker-mutated fields in `starts`/`ends`/`scales`/
/// `powers`. Adjacency is CSR: `succs(i)` / `preds(i)` are slices of a
/// single flat edge array.
#[derive(Debug, Clone)]
pub struct IntervalDag {
    /// Interval bounds in absolute trace time.
    pub start: Femtos,
    /// End of the interval.
    pub end: Femtos,
    /// Instructions contributing events to this interval.
    pub instructions: u64,
    pub(crate) meta: Vec<NodeMeta>,
    pub(crate) starts: Vec<Femtos>,
    pub(crate) ends: Vec<Femtos>,
    pub(crate) scales: Vec<f64>,
    pub(crate) powers: Vec<f64>,
    succ_off: Vec<u32>,
    succ_adj: Vec<u32>,
    pred_off: Vec<u32>,
    pred_adj: Vec<u32>,
}

impl IntervalDag {
    /// Builds a DAG from event records plus a raw edge list.
    ///
    /// Edges whose measured slack would be negative
    /// (`nodes[a].end > nodes[b].start`) are dropped, mirroring the
    /// builder's conservatism. Adjacency is materialized as CSR in two
    /// passes (degree count, then placement), preserving the edge-list
    /// order within each node's successor/predecessor slice.
    pub fn from_events(
        start: Femtos,
        end: Femtos,
        instructions: u64,
        nodes: Vec<Node>,
        edges: &[(u32, u32)],
    ) -> Self {
        let n = nodes.len();
        let mut dag = IntervalDag {
            start,
            end,
            instructions,
            meta: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            scales: Vec::with_capacity(n),
            powers: Vec::with_capacity(n),
            succ_off: Vec::new(),
            succ_adj: Vec::new(),
            pred_off: Vec::new(),
            pred_adj: Vec::new(),
        };
        for node in nodes {
            dag.meta.push(NodeMeta {
                instr: node.instr,
                kind: node.kind,
                domain: node.domain,
                orig_start: node.orig_start,
                orig_end: node.orig_end,
                scalable: node.scalable,
                domain_cycles: node.domain_cycles,
            });
            dag.starts.push(node.start);
            dag.ends.push(node.end);
            dag.scales.push(node.scale);
            dag.powers.push(node.power);
        }

        // Pass 1: out/in degree per node (negative-slack edges excluded).
        let keep = |a: u32, b: u32| dag.ends[a as usize] <= dag.starts[b as usize];
        let mut succ_off = vec![0u32; n + 1];
        let mut pred_off = vec![0u32; n + 1];
        for &(a, b) in edges {
            if keep(a, b) {
                succ_off[a as usize + 1] += 1;
                pred_off[b as usize + 1] += 1;
            }
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        // Pass 2: place edges at the running cursor per node.
        let mut succ_adj = vec![0u32; succ_off[n] as usize];
        let mut pred_adj = vec![0u32; pred_off[n] as usize];
        let mut succ_cur = succ_off.clone();
        let mut pred_cur = pred_off.clone();
        for &(a, b) in edges {
            if keep(a, b) {
                succ_adj[succ_cur[a as usize] as usize] = b;
                succ_cur[a as usize] += 1;
                pred_adj[pred_cur[b as usize] as usize] = a;
                pred_cur[b as usize] += 1;
            }
        }
        dag.succ_off = succ_off;
        dag.succ_adj = succ_adj;
        dag.pred_off = pred_off;
        dag.pred_adj = pred_adj;
        dag
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Successor indices of node `i`.
    #[inline]
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ_adj[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Predecessor indices of node `i`.
    #[inline]
    pub fn preds(&self, i: usize) -> &[u32] {
        &self.pred_adj[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Reassembles the full event record for node `i`.
    pub fn node(&self, i: usize) -> Node {
        let m = &self.meta[i];
        Node {
            instr: m.instr,
            kind: m.kind,
            domain: m.domain,
            orig_start: m.orig_start,
            orig_end: m.orig_end,
            start: self.starts[i],
            end: self.ends[i],
            scale: self.scales[i],
            power: self.powers[i],
            scalable: m.scalable,
            domain_cycles: m.domain_cycles,
        }
    }

    /// Iterates over reassembled event records.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        (0..self.len()).map(|i| self.node(i))
    }

    /// Current start of node `i`.
    #[inline]
    pub fn start_of(&self, i: usize) -> Femtos {
        self.starts[i]
    }

    /// Current end of node `i`.
    #[inline]
    pub fn end_of(&self, i: usize) -> Femtos {
        self.ends[i]
    }

    /// Current stretch factor of node `i`.
    #[inline]
    pub fn scale_of(&self, i: usize) -> f64 {
        self.scales[i]
    }

    /// Current power factor of node `i`.
    #[inline]
    pub fn power_of(&self, i: usize) -> f64 {
        self.powers[i]
    }

    /// Whether the shaker may stretch node `i`.
    #[inline]
    pub fn is_scalable(&self, i: usize) -> bool {
        self.meta[i].scalable
    }

    /// The clock domain of node `i`.
    #[inline]
    pub fn domain_of(&self, i: usize) -> DomainId {
        self.meta[i].domain
    }

    /// Minimum successor start (or the interval end for sinks): the latest
    /// time this node may currently end without delaying anything.
    #[inline]
    pub fn out_limit(&self, i: usize) -> Femtos {
        self.succs(i)
            .iter()
            .map(|&s| self.starts[s as usize])
            .fold(self.end, Femtos::min)
    }

    /// Maximum predecessor end (or the interval start for sources): the
    /// earliest time this node may currently start.
    #[inline]
    pub fn in_limit(&self, i: usize) -> Femtos {
        self.preds(i)
            .iter()
            .map(|&p| self.ends[p as usize])
            .fold(self.start, Femtos::max)
    }

    /// Total slack currently present on outgoing edges of all nodes.
    pub fn total_slack(&self) -> Femtos {
        (0..self.len())
            .map(|i| self.out_limit(i).saturating_sub(self.ends[i]))
            .sum()
    }
}

/// Relative per-domain power factors used to initialize node power.
#[derive(Debug, Clone, Copy)]
pub struct PowerFactors {
    /// Factor per domain, indexed by [`DomainId::index`].
    pub by_domain: [f64; DomainId::COUNT],
}

impl Default for PowerFactors {
    fn default() -> Self {
        // Relative per-event power, loosely following the calibrated power
        // model (integer events are the most expensive to keep fast).
        PowerFactors {
            by_domain: [0.8, 1.0, 0.9, 0.95],
        }
    }
}

/// Builder state for per-queue functional dependences.
struct QueueDeps {
    fetch_nodes: Vec<u32>,
    dispatch_nodes: Vec<u32>,
    commit_nodes: Vec<u32>,
    int_iq: Vec<(u32, u32)>, // (dispatch node, leave node)
    fp_iq: Vec<(u32, u32)>,
    lsq: Vec<(u32, u32)>, // (dispatch node, commit node)
    // Ordered execute/memory nodes per domain, for same-unit dependences.
    int_exec: Vec<u32>,
    fp_exec: Vec<u32>,
    mem_access: Vec<u32>,
}

/// Per-interval accumulation before CSR materialization.
struct DagBuilder {
    start: Femtos,
    end: Femtos,
    instructions: u64,
    nodes: Vec<Node>,
}

/// Cuts `trace` into `interval_len`-long DAGs.
///
/// Instructions are assigned to intervals by fetch start time. `scale_fe`
/// marks front-end events scalable (an ablation; the paper keeps the front
/// end at full speed).
pub fn build_interval_dags(
    trace: &[InstrTrace],
    pcfg: &PipelineConfig,
    interval_len: Femtos,
    power: PowerFactors,
    scale_fe: bool,
) -> Vec<IntervalDag> {
    // Interval length is `interval_cycles` base periods, so the base period
    // is recoverable without threading the frequency through.
    let base_period_fs: f64 = 1_000_000.0; // 1 GHz trace runs (asserted below)
    assert!(
        interval_len > Femtos::ZERO,
        "interval length must be positive"
    );
    if trace.is_empty() {
        return Vec::new();
    }
    let total_end = trace
        .iter()
        .map(|t| t.commit)
        .fold(Femtos::ZERO, Femtos::max);
    let n_intervals = (total_end.as_femtos() / interval_len.as_femtos() + 1) as usize;
    let mut builders: Vec<DagBuilder> = (0..n_intervals)
        .map(|k| DagBuilder {
            start: Femtos::from_femtos(k as u64 * interval_len.as_femtos()),
            end: Femtos::from_femtos((k as u64 + 1) * interval_len.as_femtos()),
            instructions: 0,
            nodes: Vec::new(),
        })
        .collect();

    // Per-interval builder state.
    let mut qdeps: Vec<QueueDeps> = (0..n_intervals)
        .map(|_| QueueDeps {
            fetch_nodes: Vec::new(),
            dispatch_nodes: Vec::new(),
            commit_nodes: Vec::new(),
            int_iq: Vec::new(),
            fp_iq: Vec::new(),
            lsq: Vec::new(),
            int_exec: Vec::new(),
            fp_exec: Vec::new(),
            mem_access: Vec::new(),
        })
        .collect();
    // seq → (interval, completion node) for data edges. Sequence numbers in
    // a trace are dense, so a flat table beats a hash map; producers outside
    // the recorded range simply miss.
    let seq_base = trace.iter().map(|t| t.seq).min().unwrap_or(0);
    let seq_max = trace.iter().map(|t| t.seq).max().unwrap_or(0);
    const NO_NODE: (u32, u32) = (u32::MAX, u32::MAX);
    let mut completion: Vec<(u32, u32)> = vec![NO_NODE; (seq_max - seq_base + 1) as usize];
    let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_intervals];

    for t in trace {
        let k = (t.fetch.start.as_femtos() / interval_len.as_femtos()) as usize;
        let k = k.min(n_intervals - 1);
        let dag = &mut builders[k];
        dag.instructions += 1;
        let base = dag.nodes.len() as u32;
        // Frequency-sensitive cycle count for a memory access: a DRAM miss
        // occupies the load/store clock only for the cache-pipeline part.
        let mem_domain_cycles = if t.l2_miss {
            (pcfg.l1_latency + pcfg.l2_latency) as f64
        } else {
            f64::NAN // use measured duration
        };
        let push = |dag: &mut DagBuilder, kind, domain: DomainId, s: Femtos, e: Femtos| {
            let scalable = match domain {
                DomainId::FrontEnd => scale_fe && kind != EventKind::Commit,
                _ => kind != EventKind::Commit,
            } && e > s;
            let mut domain_cycles = (e - s).as_femtos() as f64 / base_period_fs;
            if kind == EventKind::MemAccess && mem_domain_cycles.is_finite() {
                domain_cycles = domain_cycles.min(mem_domain_cycles);
            }
            dag.nodes.push(Node {
                instr: t.seq,
                kind,
                domain,
                orig_start: s,
                orig_end: e,
                start: s,
                end: e,
                scale: 1.0,
                power: power.by_domain[domain.index()],
                scalable,
                domain_cycles,
            });
            (dag.nodes.len() - 1) as u32
        };

        let f = push(
            dag,
            EventKind::Fetch,
            DomainId::FrontEnd,
            t.fetch.start,
            t.fetch.end,
        );
        let d = push(
            dag,
            EventKind::Dispatch,
            DomainId::FrontEnd,
            t.dispatch.start,
            t.dispatch.end,
        );
        edges[k].push((f, d));
        let mut compute_entry = d; // node that register sources feed
        let mut last = d;
        let q_units = &mut qdeps[k];
        if let Some(a) = t.addr_calc {
            let an = push(dag, EventKind::AddrCalc, DomainId::Integer, a.start, a.end);
            edges[k].push((last, an));
            // Same-unit dependence: the integer units execute a bounded
            // number of events at once (paper: "functional dependences link
            // each event to previous and subsequent events that use the
            // same hardware units").
            if q_units.int_exec.len() >= pcfg.fus.int_alu {
                let prev = q_units.int_exec[q_units.int_exec.len() - pcfg.fus.int_alu];
                edges[k].push((prev, an));
            }
            q_units.int_exec.push(an);
            compute_entry = an;
            last = an;
        }
        if let Some(m) = t.mem_access {
            let mn = push(
                dag,
                EventKind::MemAccess,
                DomainId::LoadStore,
                m.start,
                m.end,
            );
            edges[k].push((last, mn));
            if q_units.mem_access.len() >= pcfg.issue_width_mem {
                let prev = q_units.mem_access[q_units.mem_access.len() - pcfg.issue_width_mem];
                edges[k].push((prev, mn));
            }
            q_units.mem_access.push(mn);
            last = mn;
        }
        if let Some(x) = t.execute {
            let xn = push(dag, EventKind::Execute, t.exec_domain, x.start, x.end);
            edges[k].push((last, xn));
            match t.exec_domain {
                DomainId::FloatingPoint => {
                    if q_units.fp_exec.len() >= pcfg.fus.fp_alu {
                        let prev = q_units.fp_exec[q_units.fp_exec.len() - pcfg.fus.fp_alu];
                        edges[k].push((prev, xn));
                    }
                    q_units.fp_exec.push(xn);
                }
                _ => {
                    if q_units.int_exec.len() >= pcfg.fus.int_alu {
                        let prev = q_units.int_exec[q_units.int_exec.len() - pcfg.fus.int_alu];
                        edges[k].push((prev, xn));
                    }
                    q_units.int_exec.push(xn);
                }
            }
            compute_entry = xn;
            last = xn;
        }
        let c = push(
            dag,
            EventKind::Commit,
            DomainId::FrontEnd,
            t.commit,
            t.commit,
        );
        edges[k].push((last, c));

        // Data dependences (only within the interval).
        for producer in t.src_producers.iter().flatten() {
            if let Some(slot) = producer
                .checked_sub(seq_base)
                .and_then(|i| completion.get(i as usize))
            {
                let (pk, pnode) = *slot;
                if pk as usize == k && *slot != NO_NODE {
                    edges[k].push((pnode, compute_entry));
                }
            }
        }
        if let Some(slot) = t
            .seq
            .checked_sub(seq_base)
            .and_then(|i| completion.get_mut(i as usize))
        {
            *slot = (k as u32, last);
        }

        // Functional (capacity) dependences.
        let q = &mut qdeps[k];
        if let Some(&prev_f) = q.fetch_nodes.last() {
            edges[k].push((prev_f, f));
        }
        if q.fetch_nodes.len() >= pcfg.fetch_queue {
            let blocker = q.dispatch_nodes[q.fetch_nodes.len() - pcfg.fetch_queue];
            edges[k].push((blocker, f));
        }
        if q.commit_nodes.len() >= pcfg.rob_size {
            let blocker = q.commit_nodes[q.commit_nodes.len() - pcfg.rob_size];
            edges[k].push((blocker, d));
        }
        if let Some(&prev_c) = q.commit_nodes.last() {
            edges[k].push((prev_c, c));
        }
        q.fetch_nodes.push(f);
        q.dispatch_nodes.push(d);
        q.commit_nodes.push(c);

        // Issue-queue and LSQ capacity: dispatch of the m-th same-queue
        // instruction waits for the departure of the (m − cap)-th.
        let is_mem = t.op.is_mem();
        if is_mem {
            if q.int_iq.len() >= pcfg.iq_int {
                let (_, leave) = q.int_iq[q.int_iq.len() - pcfg.iq_int];
                edges[k].push((leave, d));
            }
            q.int_iq.push((d, compute_entry));
            if q.lsq.len() >= pcfg.lsq_size {
                let (_, leave) = q.lsq[q.lsq.len() - pcfg.lsq_size];
                edges[k].push((leave, d));
            }
            q.lsq.push((d, c));
        } else if t.op != OpClass::Branch && t.exec_domain == DomainId::FloatingPoint {
            if q.fp_iq.len() >= pcfg.iq_fp {
                let (_, leave) = q.fp_iq[q.fp_iq.len() - pcfg.iq_fp];
                edges[k].push((leave, d));
            }
            q.fp_iq.push((d, base + 2)); // execute node follows dispatch
        } else {
            if q.int_iq.len() >= pcfg.iq_int {
                let (_, leave) = q.int_iq[q.int_iq.len() - pcfg.iq_int];
                edges[k].push((leave, d));
            }
            q.int_iq.push((d, compute_entry));
        }
    }

    // Materialize CSR adjacency, dropping negative-slack edges.
    builders
        .into_iter()
        .zip(edges)
        .filter(|(b, _)| !b.nodes.is_empty())
        .map(|(b, e)| IntervalDag::from_events(b.start, b.end, b.instructions, b.nodes, &e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_pipeline::{simulate, MachineConfig};
    use mcd_workload::suites;

    fn traced_run(name: &str, n: u64) -> (Vec<InstrTrace>, PipelineConfig) {
        let mut m = MachineConfig::baseline_mcd(3);
        m.collect_trace = true;
        let profile = suites::by_name(name).expect("known benchmark");
        let r = simulate(&m, &profile, n);
        (r.trace.expect("trace requested"), m.pipeline)
    }

    #[test]
    fn dags_cover_all_instructions() {
        let (trace, pcfg) = traced_run("adpcm", 5_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        assert!(!dags.is_empty());
        let total: u64 = dags.iter().map(|d| d.instructions).sum();
        assert_eq!(total, 5_000);
    }

    #[test]
    fn all_edges_have_non_negative_slack() {
        let (trace, pcfg) = traced_run("gcc", 5_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        for dag in &dags {
            for i in 0..dag.len() {
                for &s in dag.succs(i) {
                    assert!(dag.end_of(i) <= dag.start_of(s as usize));
                }
            }
        }
    }

    #[test]
    fn csr_adjacency_is_symmetric() {
        // Every successor edge must appear as the matching predecessor edge
        // and vice versa (CSR is built in two independent passes).
        let (trace, pcfg) = traced_run("gcc", 5_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        for dag in &dags {
            let mut out_edges = 0usize;
            for i in 0..dag.len() {
                for &s in dag.succs(i) {
                    assert!(
                        dag.preds(s as usize).contains(&(i as u32)),
                        "succ edge {i}->{s} missing from preds"
                    );
                }
                out_edges += dag.succs(i).len();
            }
            let in_edges: usize = (0..dag.len()).map(|i| dag.preds(i).len()).sum();
            assert_eq!(out_edges, in_edges);
            assert!(out_edges > 0, "interval DAG should have edges");
        }
    }

    #[test]
    fn front_end_nodes_are_not_scalable_by_default() {
        let (trace, pcfg) = traced_run("adpcm", 2_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        for dag in &dags {
            for node in dag.nodes() {
                if node.domain == DomainId::FrontEnd {
                    assert!(!node.scalable);
                }
            }
        }
    }

    #[test]
    fn backend_events_are_scalable() {
        let (trace, pcfg) = traced_run("swim", 3_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        let scalable = dags
            .iter()
            .flat_map(|d| d.nodes().collect::<Vec<_>>())
            .filter(|n| n.scalable)
            .count();
        assert!(scalable > 1_000, "only {scalable} scalable nodes");
    }

    #[test]
    fn interval_dag_has_slack() {
        // A real run always leaves slack off the critical path.
        let (trace, pcfg) = traced_run("art", 5_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        let slack: Femtos = dags.iter().map(|d| d.total_slack()).sum();
        assert!(slack > Femtos::ZERO);
    }
}
