//! Dependence-DAG construction from a full-speed event trace.
//!
//! §3.2: the trace is cut into 50 K-cycle intervals; for each interval a DAG
//! is built whose nodes are primitive events (fetch, dispatch, address
//! calculation, memory access, execute, commit) and whose edges are data
//! dependences, intra-instruction pipeline order, and functional dependences
//! that capture the limited size of the fetch queue, ROB, issue queues and
//! load/store queue ("in the fetch queue, event *i* depends on event
//! *i − k*, where *k* is the size of the queue").
//!
//! Edge slack is measured from the recorded event times; edges whose
//! measured slack would be negative (an artifact of approximating a
//! queue-departure constraint with the corresponding event's *end* time) are
//! dropped — this only makes the subsequent shaker more conservative.

use mcd_pipeline::{DomainId, EventKind, InstrTrace, PipelineConfig};
use mcd_time::Femtos;
use mcd_workload::OpClass;

/// One primitive event in the DAG.
#[derive(Debug, Clone)]
pub struct Node {
    /// Instruction sequence number this event belongs to.
    pub instr: u64,
    /// Which primitive event this is.
    pub kind: EventKind,
    /// The clock domain that executes the event.
    pub domain: DomainId,
    /// Original (measured) start time.
    pub orig_start: Femtos,
    /// Original (measured) end time.
    pub orig_end: Femtos,
    /// Current start (mutated by the shaker).
    pub start: Femtos,
    /// Current end (mutated by the shaker).
    pub end: Femtos,
    /// Stretch factor (1.0 = full speed, up to the ¼-frequency cap).
    pub scale: f64,
    /// Relative power factor (initialized from the domain's share, divided
    /// by `scale²` as the event is stretched).
    pub power: f64,
    /// Whether the shaker may stretch this event (front-end events and
    /// commits are not scaled, matching the paper).
    pub scalable: bool,
    /// Clock cycles of the owning domain actually consumed by the event.
    /// Usually `duration × f_base`, but a memory access that misses to main
    /// memory only occupies the load/store clock for the L1 + L2 pipeline
    /// portion — the DRAM part is frequency-invariant and must not force
    /// the domain to stay fast.
    pub domain_cycles: f64,
}

impl Node {
    /// Original duration of the event.
    pub fn orig_duration(&self) -> Femtos {
        self.orig_end - self.orig_start
    }

    /// Current (possibly stretched) duration.
    pub fn duration(&self) -> Femtos {
        self.end - self.start
    }
}

/// A dependence DAG covering one analysis interval.
#[derive(Debug, Clone)]
pub struct IntervalDag {
    /// Interval bounds in absolute trace time.
    pub start: Femtos,
    /// End of the interval.
    pub end: Femtos,
    /// All nodes.
    pub nodes: Vec<Node>,
    /// Successor adjacency (indices into `nodes`).
    pub succs: Vec<Vec<u32>>,
    /// Predecessor adjacency.
    pub preds: Vec<Vec<u32>>,
    /// Instructions contributing events to this interval.
    pub instructions: u64,
}

impl IntervalDag {
    /// Minimum successor start (or the interval end for sinks): the latest
    /// time this node may currently end without delaying anything.
    pub fn out_limit(&self, i: usize) -> Femtos {
        self.succs[i]
            .iter()
            .map(|&s| self.nodes[s as usize].start)
            .fold(self.end, Femtos::min)
    }

    /// Maximum predecessor end (or the interval start for sources): the
    /// earliest time this node may currently start.
    pub fn in_limit(&self, i: usize) -> Femtos {
        self.preds[i]
            .iter()
            .map(|&p| self.nodes[p as usize].end)
            .fold(self.start, Femtos::max)
    }

    /// Total slack currently present on outgoing edges of all nodes.
    pub fn total_slack(&self) -> Femtos {
        (0..self.nodes.len())
            .map(|i| self.out_limit(i).saturating_sub(self.nodes[i].end))
            .sum()
    }
}

/// Relative per-domain power factors used to initialize node power.
#[derive(Debug, Clone, Copy)]
pub struct PowerFactors {
    /// Factor per domain, indexed by [`DomainId::index`].
    pub by_domain: [f64; DomainId::COUNT],
}

impl Default for PowerFactors {
    fn default() -> Self {
        // Relative per-event power, loosely following the calibrated power
        // model (integer events are the most expensive to keep fast).
        PowerFactors {
            by_domain: [0.8, 1.0, 0.9, 0.95],
        }
    }
}

/// Builder state for per-queue functional dependences.
struct QueueDeps {
    fetch_nodes: Vec<u32>,
    dispatch_nodes: Vec<u32>,
    commit_nodes: Vec<u32>,
    int_iq: Vec<(u32, u32)>, // (dispatch node, leave node)
    fp_iq: Vec<(u32, u32)>,
    lsq: Vec<(u32, u32)>, // (dispatch node, commit node)
    // Ordered execute/memory nodes per domain, for same-unit dependences.
    int_exec: Vec<u32>,
    fp_exec: Vec<u32>,
    mem_access: Vec<u32>,
}

/// Cuts `trace` into `interval_len`-long DAGs.
///
/// Instructions are assigned to intervals by fetch start time. `scale_fe`
/// marks front-end events scalable (an ablation; the paper keeps the front
/// end at full speed).
pub fn build_interval_dags(
    trace: &[InstrTrace],
    pcfg: &PipelineConfig,
    interval_len: Femtos,
    power: PowerFactors,
    scale_fe: bool,
) -> Vec<IntervalDag> {
    // Interval length is `interval_cycles` base periods, so the base period
    // is recoverable without threading the frequency through.
    let base_period_fs: f64 = 1_000_000.0; // 1 GHz trace runs (asserted below)
    assert!(
        interval_len > Femtos::ZERO,
        "interval length must be positive"
    );
    if trace.is_empty() {
        return Vec::new();
    }
    let total_end = trace
        .iter()
        .map(|t| t.commit)
        .fold(Femtos::ZERO, Femtos::max);
    let n_intervals = (total_end.as_femtos() / interval_len.as_femtos() + 1) as usize;
    let mut dags: Vec<IntervalDag> = (0..n_intervals)
        .map(|k| IntervalDag {
            start: Femtos::from_femtos(k as u64 * interval_len.as_femtos()),
            end: Femtos::from_femtos((k as u64 + 1) * interval_len.as_femtos()),
            nodes: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            instructions: 0,
        })
        .collect();

    // Per-interval builder state.
    let mut qdeps: Vec<QueueDeps> = (0..n_intervals)
        .map(|_| QueueDeps {
            fetch_nodes: Vec::new(),
            dispatch_nodes: Vec::new(),
            commit_nodes: Vec::new(),
            int_iq: Vec::new(),
            fp_iq: Vec::new(),
            lsq: Vec::new(),
            int_exec: Vec::new(),
            fp_exec: Vec::new(),
            mem_access: Vec::new(),
        })
        .collect();
    // seq → (interval, completion node) for data edges.
    let mut completion: std::collections::HashMap<u64, (usize, u32)> =
        std::collections::HashMap::new();
    let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_intervals];

    for t in trace {
        let k = (t.fetch.start.as_femtos() / interval_len.as_femtos()) as usize;
        let k = k.min(n_intervals - 1);
        let dag = &mut dags[k];
        dag.instructions += 1;
        let base = dag.nodes.len() as u32;
        // Frequency-sensitive cycle count for a memory access: a DRAM miss
        // occupies the load/store clock only for the cache-pipeline part.
        let mem_domain_cycles = if t.l2_miss {
            (pcfg.l1_latency + pcfg.l2_latency) as f64
        } else {
            f64::NAN // use measured duration
        };
        let push = |dag: &mut IntervalDag, kind, domain: DomainId, s: Femtos, e: Femtos| {
            let scalable = match domain {
                DomainId::FrontEnd => scale_fe && kind != EventKind::Commit,
                _ => kind != EventKind::Commit,
            } && e > s;
            let mut domain_cycles = (e - s).as_femtos() as f64 / base_period_fs;
            if kind == EventKind::MemAccess && mem_domain_cycles.is_finite() {
                domain_cycles = domain_cycles.min(mem_domain_cycles);
            }
            dag.nodes.push(Node {
                instr: t.seq,
                kind,
                domain,
                orig_start: s,
                orig_end: e,
                start: s,
                end: e,
                scale: 1.0,
                power: power.by_domain[domain.index()],
                scalable,
                domain_cycles,
            });
            (dag.nodes.len() - 1) as u32
        };

        let f = push(
            dag,
            EventKind::Fetch,
            DomainId::FrontEnd,
            t.fetch.start,
            t.fetch.end,
        );
        let d = push(
            dag,
            EventKind::Dispatch,
            DomainId::FrontEnd,
            t.dispatch.start,
            t.dispatch.end,
        );
        edges[k].push((f, d));
        let mut compute_entry = d; // node that register sources feed
        let mut last = d;
        let q_units = &mut qdeps[k];
        if let Some(a) = t.addr_calc {
            let an = push(dag, EventKind::AddrCalc, DomainId::Integer, a.start, a.end);
            edges[k].push((last, an));
            // Same-unit dependence: the integer units execute a bounded
            // number of events at once (paper: "functional dependences link
            // each event to previous and subsequent events that use the
            // same hardware units").
            if q_units.int_exec.len() >= pcfg.fus.int_alu {
                let prev = q_units.int_exec[q_units.int_exec.len() - pcfg.fus.int_alu];
                edges[k].push((prev, an));
            }
            q_units.int_exec.push(an);
            compute_entry = an;
            last = an;
        }
        if let Some(m) = t.mem_access {
            let mn = push(
                dag,
                EventKind::MemAccess,
                DomainId::LoadStore,
                m.start,
                m.end,
            );
            edges[k].push((last, mn));
            if q_units.mem_access.len() >= pcfg.issue_width_mem {
                let prev = q_units.mem_access[q_units.mem_access.len() - pcfg.issue_width_mem];
                edges[k].push((prev, mn));
            }
            q_units.mem_access.push(mn);
            last = mn;
        }
        if let Some(x) = t.execute {
            let xn = push(dag, EventKind::Execute, t.exec_domain, x.start, x.end);
            edges[k].push((last, xn));
            match t.exec_domain {
                DomainId::FloatingPoint => {
                    if q_units.fp_exec.len() >= pcfg.fus.fp_alu {
                        let prev = q_units.fp_exec[q_units.fp_exec.len() - pcfg.fus.fp_alu];
                        edges[k].push((prev, xn));
                    }
                    q_units.fp_exec.push(xn);
                }
                _ => {
                    if q_units.int_exec.len() >= pcfg.fus.int_alu {
                        let prev = q_units.int_exec[q_units.int_exec.len() - pcfg.fus.int_alu];
                        edges[k].push((prev, xn));
                    }
                    q_units.int_exec.push(xn);
                }
            }
            compute_entry = xn;
            last = xn;
        }
        let c = push(
            dag,
            EventKind::Commit,
            DomainId::FrontEnd,
            t.commit,
            t.commit,
        );
        edges[k].push((last, c));

        // Data dependences (only within the interval).
        for producer in t.src_producers.iter().flatten() {
            if let Some(&(pk, pnode)) = completion.get(producer) {
                if pk == k {
                    edges[k].push((pnode, compute_entry));
                }
            }
        }
        completion.insert(t.seq, (k, last));

        // Functional (capacity) dependences.
        let q = &mut qdeps[k];
        if let Some(&prev_f) = q.fetch_nodes.last() {
            edges[k].push((prev_f, f));
        }
        if q.fetch_nodes.len() >= pcfg.fetch_queue {
            let blocker = q.dispatch_nodes[q.fetch_nodes.len() - pcfg.fetch_queue];
            edges[k].push((blocker, f));
        }
        if q.commit_nodes.len() >= pcfg.rob_size {
            let blocker = q.commit_nodes[q.commit_nodes.len() - pcfg.rob_size];
            edges[k].push((blocker, d));
        }
        if let Some(&prev_c) = q.commit_nodes.last() {
            edges[k].push((prev_c, c));
        }
        q.fetch_nodes.push(f);
        q.dispatch_nodes.push(d);
        q.commit_nodes.push(c);

        // Issue-queue and LSQ capacity: dispatch of the m-th same-queue
        // instruction waits for the departure of the (m − cap)-th.
        let is_mem = t.op.is_mem();
        if is_mem {
            if q.int_iq.len() >= pcfg.iq_int {
                let (_, leave) = q.int_iq[q.int_iq.len() - pcfg.iq_int];
                edges[k].push((leave, d));
            }
            q.int_iq.push((d, compute_entry));
            if q.lsq.len() >= pcfg.lsq_size {
                let (_, leave) = q.lsq[q.lsq.len() - pcfg.lsq_size];
                edges[k].push((leave, d));
            }
            q.lsq.push((d, c));
        } else if t.op != OpClass::Branch && t.exec_domain == DomainId::FloatingPoint {
            if q.fp_iq.len() >= pcfg.iq_fp {
                let (_, leave) = q.fp_iq[q.fp_iq.len() - pcfg.iq_fp];
                edges[k].push((leave, d));
            }
            q.fp_iq.push((d, base + 2)); // execute node follows dispatch
        } else {
            if q.int_iq.len() >= pcfg.iq_int {
                let (_, leave) = q.int_iq[q.int_iq.len() - pcfg.iq_int];
                edges[k].push((leave, d));
            }
            q.int_iq.push((d, compute_entry));
        }
    }

    // Materialize adjacency, dropping negative-slack edges.
    for (k, dag) in dags.iter_mut().enumerate() {
        let n = dag.nodes.len();
        dag.succs = vec![Vec::new(); n];
        dag.preds = vec![Vec::new(); n];
        for &(a, b) in &edges[k] {
            if dag.nodes[a as usize].end <= dag.nodes[b as usize].start {
                dag.succs[a as usize].push(b);
                dag.preds[b as usize].push(a);
            }
        }
    }
    dags.retain(|d| !d.nodes.is_empty());
    dags
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_pipeline::{simulate, MachineConfig};
    use mcd_workload::suites;

    fn traced_run(name: &str, n: u64) -> (Vec<InstrTrace>, PipelineConfig) {
        let mut m = MachineConfig::baseline_mcd(3);
        m.collect_trace = true;
        let profile = suites::by_name(name).expect("known benchmark");
        let r = simulate(&m, &profile, n);
        (r.trace.expect("trace requested"), m.pipeline)
    }

    #[test]
    fn dags_cover_all_instructions() {
        let (trace, pcfg) = traced_run("adpcm", 5_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        assert!(!dags.is_empty());
        let total: u64 = dags.iter().map(|d| d.instructions).sum();
        assert_eq!(total, 5_000);
    }

    #[test]
    fn all_edges_have_non_negative_slack() {
        let (trace, pcfg) = traced_run("gcc", 5_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        for dag in &dags {
            for (i, succs) in dag.succs.iter().enumerate() {
                for &s in succs {
                    assert!(dag.nodes[i].end <= dag.nodes[s as usize].start);
                }
            }
        }
    }

    #[test]
    fn front_end_nodes_are_not_scalable_by_default() {
        let (trace, pcfg) = traced_run("adpcm", 2_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        for dag in &dags {
            for node in &dag.nodes {
                if node.domain == DomainId::FrontEnd {
                    assert!(!node.scalable);
                }
            }
        }
    }

    #[test]
    fn backend_events_are_scalable() {
        let (trace, pcfg) = traced_run("swim", 3_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        let scalable = dags
            .iter()
            .flat_map(|d| d.nodes.iter())
            .filter(|n| n.scalable)
            .count();
        assert!(scalable > 1_000, "only {scalable} scalable nodes");
    }

    #[test]
    fn interval_dag_has_slack() {
        // A real run always leaves slack off the critical path.
        let (trace, pcfg) = traced_run("art", 5_000);
        let dags = build_interval_dags(
            &trace,
            &pcfg,
            Femtos::from_micros(1),
            PowerFactors::default(),
            false,
        );
        let slack: Femtos = dags.iter().map(|d| d.total_slack()).sum();
        assert!(slack > Femtos::ZERO);
    }
}
