//! The shaker algorithm (§3.2).
//!
//! "The stretching phase of our reconfiguration tool uses a 'shaker'
//! algorithm to distribute slack and scale edges as uniformly as possible."
//!
//! The shaker sweeps the interval DAG backward and forward alternately with
//! a falling power threshold. On a backward pass it visits events latest
//! first: any event whose *outgoing* edges all have slack, and whose power
//! factor exceeds the threshold, is stretched into that slack (capped at
//! 4× — the ¼-frequency floor) and then pushed as late as possible so the
//! remaining slack moves to its incoming edges. Forward passes mirror this,
//! moving slack toward outgoing edges. The process stops when no usable
//! slack remains or every event adjacent to slack is already at the cap.

use mcd_pipeline::DomainId;
use mcd_time::{Femtos, Frequency};

use crate::dag::IntervalDag;
use crate::histogram::FreqHistogram;

/// Shaker tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShakerConfig {
    /// Maximum stretch factor (the paper scales down to ¼ frequency).
    pub max_scale: f64,
    /// Number of backward+forward pass pairs (the threshold falls to zero
    /// across them).
    pub passes: usize,
}

impl Default for ShakerConfig {
    fn default() -> Self {
        ShakerConfig {
            max_scale: 4.0,
            passes: 10,
        }
    }
}

/// Stretches one interval's events into their slack. Returns per-domain
/// cycle-weighted frequency histograms (indexed by [`DomainId::index`]).
///
/// `base_frequency` is the full-speed clock of the trace run; an event
/// stretched by `s` is booked at frequency `base/s`.
pub fn run_shaker(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    base_frequency: Frequency,
) -> [FreqHistogram; DomainId::COUNT] {
    let max_power = dag
        .nodes
        .iter()
        .filter(|n| n.scalable)
        .map(|n| n.power)
        .fold(0.0f64, f64::max);
    if max_power > 0.0 {
        // Visit orders by original event times (stable across passes).
        let mut by_end_desc: Vec<u32> = (0..dag.nodes.len() as u32).collect();
        by_end_desc.sort_by_key(|&i| std::cmp::Reverse(dag.nodes[i as usize].orig_end));
        let mut by_start_asc: Vec<u32> = (0..dag.nodes.len() as u32).collect();
        by_start_asc.sort_by_key(|&i| dag.nodes[i as usize].orig_start);

        for pass in 0..cfg.passes {
            // Threshold starts just below the maximum power factor and
            // falls linearly to zero.
            let threshold = max_power * (1.0 - (pass as f64 + 1.0) / cfg.passes as f64);
            backward_pass(dag, cfg, threshold, &by_end_desc);
            forward_pass(dag, cfg, threshold, &by_start_asc);
        }
    }

    // Histograms: every scalable event books its original cycle count at
    // its post-shaker frequency; unscalable back-end events count at full
    // speed. Front-end events are not scaled by the tool (the paper pins
    // the front end at 1 GHz) and are excluded from histograms.
    let mut hists = [
        FreqHistogram::new(base_frequency),
        FreqHistogram::new(base_frequency),
        FreqHistogram::new(base_frequency),
        FreqHistogram::new(base_frequency),
    ];
    let base_hz = base_frequency.as_hz() as f64;
    let base_period = base_frequency.period().as_femtos() as f64;
    for node in &dag.nodes {
        if node.domain == DomainId::FrontEnd {
            continue;
        }
        let cycles = node.domain_cycles;
        if cycles <= 0.0 {
            continue;
        }
        // Half a cycle of each event's harvested slack is issue-alignment
        // quantization in the measured schedule, not time the event could
        // really yield at a lower clock (along a dense dependence chain
        // every hop shows such sub-cycle gaps, and harvesting them would
        // let the tool scale a fully busy domain). Discount it.
        let orig_fs = node.orig_duration().as_femtos() as f64;
        let stretched_fs = node.scale * orig_fs - 0.5 * base_period;
        let scale_eff = (stretched_fs / orig_fs).max(1.0);
        let f = Frequency::from_hz((base_hz / scale_eff).round().max(1.0) as u64);
        hists[node.domain.index()].add(f, cycles);
    }
    hists
}

fn backward_pass(dag: &mut IntervalDag, cfg: &ShakerConfig, threshold: f64, order: &[u32]) {
    for &i in order {
        let i = i as usize;
        let (scalable, power) = {
            let n = &dag.nodes[i];
            (n.scalable, n.power)
        };
        if !scalable || power <= threshold {
            continue;
        }
        let limit = dag.out_limit(i);
        let n = &dag.nodes[i];
        if limit <= n.end {
            continue; // no outgoing slack
        }
        let slack = (limit - n.end).as_femtos() as f64;
        let orig = n.orig_duration().as_femtos() as f64;
        let cur = n.duration().as_femtos() as f64;
        // Stretch until the slack is consumed, the ¼-frequency cap is hit,
        // or the power factor falls below the threshold.
        let scale_by_slack = (cur + slack) / orig;
        let scale_by_threshold = if threshold > 0.0 {
            (dag.nodes[i].power * dag.nodes[i].scale * dag.nodes[i].scale / threshold).sqrt()
        } else {
            f64::INFINITY
        };
        let new_scale = scale_by_slack.min(scale_by_threshold).min(cfg.max_scale);
        if new_scale > dag.nodes[i].scale {
            let n = &mut dag.nodes[i];
            n.scale = new_scale;
            n.power = n.power * (cur / orig) * (cur / orig) / (new_scale * new_scale);
            n.end = n.start + Femtos::from_femtos((orig * new_scale).round() as u64);
        }
        // Push the event as late as possible: remaining outgoing slack
        // becomes incoming slack.
        let n_end = dag.nodes[i].end;
        if limit > n_end {
            let shift = limit - n_end;
            let n = &mut dag.nodes[i];
            n.start += shift;
            n.end += shift;
        }
    }
}

fn forward_pass(dag: &mut IntervalDag, cfg: &ShakerConfig, threshold: f64, order: &[u32]) {
    for &i in order {
        let i = i as usize;
        let (scalable, power) = {
            let n = &dag.nodes[i];
            (n.scalable, n.power)
        };
        if !scalable || power <= threshold {
            continue;
        }
        let limit = dag.in_limit(i);
        let n = &dag.nodes[i];
        if limit >= n.start {
            continue; // no incoming slack
        }
        let slack = (n.start - limit).as_femtos() as f64;
        let orig = n.orig_duration().as_femtos() as f64;
        let cur = n.duration().as_femtos() as f64;
        let scale_by_slack = (cur + slack) / orig;
        let scale_by_threshold = if threshold > 0.0 {
            (dag.nodes[i].power * dag.nodes[i].scale * dag.nodes[i].scale / threshold).sqrt()
        } else {
            f64::INFINITY
        };
        let new_scale = scale_by_slack.min(scale_by_threshold).min(cfg.max_scale);
        if new_scale > dag.nodes[i].scale {
            let n = &mut dag.nodes[i];
            n.scale = new_scale;
            n.power = n.power * (cur / orig) * (cur / orig) / (new_scale * new_scale);
            n.start = n.end - Femtos::from_femtos((orig * new_scale).round() as u64);
        }
        // Pull the event as early as possible: remaining incoming slack
        // becomes outgoing slack.
        let n_start = dag.nodes[i].start;
        if limit < n_start {
            let shift = n_start - limit;
            let n = &mut dag.nodes[i];
            n.start -= shift;
            n.end -= shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Node;
    use mcd_pipeline::EventKind;

    /// Builds a hand-rolled two-node chain with `gap` femtoseconds of slack
    /// between them inside a closed interval.
    fn chain_dag(gap: u64) -> IntervalDag {
        let mk = |instr, s: u64, e: u64, scalable| Node {
            instr,
            kind: EventKind::Execute,
            domain: DomainId::Integer,
            orig_start: Femtos::from_femtos(s),
            orig_end: Femtos::from_femtos(e),
            start: Femtos::from_femtos(s),
            end: Femtos::from_femtos(e),
            scale: 1.0,
            power: 1.0,
            scalable,
            domain_cycles: (e - s) as f64 / 1_000_000.0,
        };
        IntervalDag {
            start: Femtos::ZERO,
            end: Femtos::from_femtos(4_000 + gap),
            nodes: vec![mk(0, 0, 1_000, true), mk(1, 1_000 + gap, 2_000 + gap, true)],
            succs: vec![vec![1], vec![]],
            preds: vec![vec![], vec![0]],
            instructions: 2,
        }
    }

    #[test]
    fn shaker_consumes_slack() {
        let mut dag = chain_dag(3_000);
        let before = dag.total_slack();
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        let after = dag.total_slack();
        assert!(after < before, "slack should shrink: {before} -> {after}");
        assert!(dag.nodes.iter().any(|n| n.scale > 1.0));
    }

    #[test]
    fn shaker_respects_quarter_frequency_cap() {
        let mut dag = chain_dag(1_000_000); // oceans of slack
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        for n in &dag.nodes {
            assert!(n.scale <= 4.0 + 1e-9, "scale {}", n.scale);
        }
    }

    #[test]
    fn shaker_never_violates_dependences() {
        let mut dag = chain_dag(2_500);
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        // Successor must still start no earlier than predecessor ends.
        assert!(dag.nodes[0].end <= dag.nodes[1].start);
        // Nothing may leave the interval.
        for n in &dag.nodes {
            assert!(n.start >= dag.start && n.end <= dag.end);
        }
    }

    #[test]
    fn unscalable_nodes_are_untouched() {
        let mut dag = chain_dag(3_000);
        dag.nodes[0].scalable = false;
        dag.nodes[1].scalable = false;
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        assert_eq!(dag.nodes[0].scale, 1.0);
        assert_eq!(dag.nodes[0].start, Femtos::ZERO);
        assert_eq!(dag.nodes[1].scale, 1.0);
    }

    #[test]
    fn no_slack_means_no_stretching() {
        let mut dag = chain_dag(0);
        dag.end = Femtos::from_femtos(2_000); // seal the interval tight
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        assert_eq!(dag.nodes[0].scale, 1.0);
        assert_eq!(dag.nodes[1].scale, 1.0);
    }

    #[test]
    fn histograms_book_scaled_cycles() {
        let mut dag = chain_dag(3_000);
        let hists = run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        let int_hist = &hists[DomainId::Integer.index()];
        // Two 1000-cycle events (1000 fs @ 1 GHz = 1 cycle each... in fs:
        // 1000 fs is 0.001 cycles; just check mass is positive and finite).
        assert!(int_hist.total_cycles() > 0.0);
        assert!(hists[DomainId::FloatingPoint.index()].is_empty());
    }

    #[test]
    fn power_factor_drops_quadratically_with_scale() {
        let mut dag = chain_dag(3_000);
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        for n in &dag.nodes {
            let expected = 1.0 / (n.scale * n.scale);
            assert!(
                (n.power - expected).abs() / expected < 1e-3,
                "power {} scale {}",
                n.power,
                n.scale
            );
        }
    }
}
