//! The shaker algorithm (§3.2).
//!
//! "The stretching phase of our reconfiguration tool uses a 'shaker'
//! algorithm to distribute slack and scale edges as uniformly as possible."
//!
//! The shaker sweeps the interval DAG backward and forward alternately with
//! a falling power threshold. On a backward pass it visits events latest
//! first: any event whose *outgoing* edges all have slack, and whose power
//! factor exceeds the threshold, is stretched into that slack (capped at
//! 4× — the ¼-frequency floor) and then pushed as late as possible so the
//! remaining slack moves to its incoming edges. Forward passes mirror this,
//! moving slack toward outgoing edges. The process stops when no usable
//! slack remains or every event adjacent to slack is already at the cap.
//!
//! # Worklist sweeps
//!
//! A full sweep visits every node on every pass, but after the first pass
//! pair almost every visit is a no-op: the node either has no slack in the
//! sweep direction or its power factor is below the falling threshold. The
//! production implementation therefore keeps a per-direction *pending* bit
//! per node and only does the slack/stretch arithmetic for pending nodes:
//!
//! * all scalable nodes start pending in both directions;
//! * a visit that finds the node's power at or below the threshold keeps it
//!   pending (the threshold falls every pass, so the node may become
//!   eligible later);
//! * a visit that finds no slack — or that consumes it (after acting, a
//!   node sits flush against its limit) — clears the bit; and
//! * a node is re-marked exactly when the event that could have grown its
//!   slack happens: a backward move of node *i* (its start shifts later)
//!   grows the *outgoing* slack of `preds(i)` and the *incoming* slack of
//!   *i* itself, a forward move (its end shifts earlier) grows the
//!   *incoming* slack of `succs(i)` and the *outgoing* slack of *i*.
//!
//! Marks behind the sweep cursor survive to the next same-direction sweep,
//! which is exactly when a full sweep would next act on them; marks ahead
//! of the cursor are handled in the current sweep, as a full sweep would.
//! Skipped nodes are provably no-ops under a full sweep, so both schemes
//! produce identical final state; debug builds assert this against
//! [`run_shaker_reference`] on every invocation, and a proptest plus the
//! golden fixtures pin it in CI.

use mcd_pipeline::DomainId;
use mcd_time::{Femtos, Frequency};

use crate::dag::IntervalDag;
use crate::histogram::FreqHistogram;

/// Shaker tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShakerConfig {
    /// Maximum stretch factor (the paper scales down to ¼ frequency).
    pub max_scale: f64,
    /// Number of backward+forward pass pairs (the threshold falls to zero
    /// across them).
    pub passes: usize,
}

impl Default for ShakerConfig {
    fn default() -> Self {
        ShakerConfig {
            max_scale: 4.0,
            passes: 10,
        }
    }
}

/// Reusable buffers for [`run_shaker_with`]: the per-interval visit orders
/// and the worklist pending bits. One scratch per analysis thread amortizes
/// the allocations across every interval that thread processes.
#[derive(Debug, Default)]
pub struct AnalysisScratch {
    by_end_desc: Vec<u32>,
    by_start_asc: Vec<u32>,
    pending_backward: Vec<bool>,
    pending_forward: Vec<bool>,
}

impl AnalysisScratch {
    /// Creates an empty scratch; buffers grow to the largest interval seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts the visit orders for `dag` and seeds every scalable node as
    /// pending in both directions.
    fn prepare(&mut self, dag: &IntervalDag) {
        let n = dag.len();
        // Unstable sorts with the index as tie-breaker: same order as a
        // stable sort by the key alone, without the merge-sort scratch
        // allocation.
        self.by_end_desc.clear();
        self.by_end_desc.extend(0..n as u32);
        self.by_end_desc
            .sort_unstable_by_key(|&i| (std::cmp::Reverse(dag.meta[i as usize].orig_end), i));
        self.by_start_asc.clear();
        self.by_start_asc.extend(0..n as u32);
        self.by_start_asc
            .sort_unstable_by_key(|&i| (dag.meta[i as usize].orig_start, i));
        self.pending_backward.clear();
        self.pending_forward.clear();
        self.pending_backward
            .extend(dag.meta.iter().map(|m| m.scalable));
        self.pending_forward
            .extend(dag.meta.iter().map(|m| m.scalable));
    }
}

/// Stretches one interval's events into their slack. Returns per-domain
/// cycle-weighted frequency histograms (indexed by [`DomainId::index`]).
///
/// `base_frequency` is the full-speed clock of the trace run; an event
/// stretched by `s` is booked at frequency `base/s`.
///
/// Convenience wrapper over [`run_shaker_with`] with a throwaway scratch.
pub fn run_shaker(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    base_frequency: Frequency,
) -> [FreqHistogram; DomainId::COUNT] {
    run_shaker_with(dag, cfg, base_frequency, &mut AnalysisScratch::new())
}

/// [`run_shaker`] with caller-owned scratch buffers (worklist sweeps).
pub fn run_shaker_with(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    base_frequency: Frequency,
    scratch: &mut AnalysisScratch,
) -> [FreqHistogram; DomainId::COUNT] {
    #[cfg(debug_assertions)]
    let reference = {
        let mut clone = dag.clone();
        shake_full_sweeps(&mut clone, cfg);
        clone
    };

    let max_power = max_scalable_power(dag);
    if max_power > 0.0 {
        scratch.prepare(dag);
        for pass in 0..cfg.passes {
            // Threshold starts just below the maximum power factor and
            // falls linearly to zero.
            let threshold = max_power * (1.0 - (pass as f64 + 1.0) / cfg.passes as f64);
            backward_sweep(
                dag,
                cfg,
                threshold,
                &scratch.by_end_desc,
                &mut scratch.pending_backward,
                &mut scratch.pending_forward,
            );
            forward_sweep(
                dag,
                cfg,
                threshold,
                &scratch.by_start_asc,
                &mut scratch.pending_backward,
                &mut scratch.pending_forward,
            );
        }
    }

    #[cfg(debug_assertions)]
    {
        debug_assert_eq!(
            dag.scales, reference.scales,
            "worklist shaker diverged from full sweeps (scale)"
        );
        debug_assert_eq!(
            dag.starts, reference.starts,
            "worklist shaker diverged from full sweeps (start)"
        );
        debug_assert_eq!(
            dag.ends, reference.ends,
            "worklist shaker diverged from full sweeps (end)"
        );
        debug_assert_eq!(
            dag.powers, reference.powers,
            "worklist shaker diverged from full sweeps (power)"
        );
    }

    book_histograms(dag, base_frequency)
}

/// The original full-sweep shaker, kept as the executable specification the
/// worklist implementation is checked against (debug assertions, the
/// equivalence proptest, and the criterion kernels).
pub fn run_shaker_reference(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    base_frequency: Frequency,
) -> [FreqHistogram; DomainId::COUNT] {
    shake_full_sweeps(dag, cfg);
    book_histograms(dag, base_frequency)
}

fn max_scalable_power(dag: &IntervalDag) -> f64 {
    dag.meta
        .iter()
        .zip(&dag.powers)
        .filter(|(m, _)| m.scalable)
        .map(|(_, &p)| p)
        .fold(0.0f64, f64::max)
}

fn shake_full_sweeps(dag: &mut IntervalDag, cfg: &ShakerConfig) {
    let max_power = max_scalable_power(dag);
    if max_power <= 0.0 {
        return;
    }
    // Visit orders by original event times (stable across passes).
    let mut by_end_desc: Vec<u32> = (0..dag.len() as u32).collect();
    by_end_desc.sort_by_key(|&i| std::cmp::Reverse(dag.meta[i as usize].orig_end));
    let mut by_start_asc: Vec<u32> = (0..dag.len() as u32).collect();
    by_start_asc.sort_by_key(|&i| dag.meta[i as usize].orig_start);

    for pass in 0..cfg.passes {
        let threshold = max_power * (1.0 - (pass as f64 + 1.0) / cfg.passes as f64);
        backward_pass_full(dag, cfg, threshold, &by_end_desc);
        forward_pass_full(dag, cfg, threshold, &by_start_asc);
    }
}

/// Histograms: every scalable event books its original cycle count at its
/// post-shaker frequency; unscalable back-end events count at full speed.
/// Front-end events are not scaled by the tool (the paper pins the front
/// end at 1 GHz) and are excluded from histograms.
fn book_histograms(
    dag: &IntervalDag,
    base_frequency: Frequency,
) -> [FreqHistogram; DomainId::COUNT] {
    let mut hists = [
        FreqHistogram::new(base_frequency),
        FreqHistogram::new(base_frequency),
        FreqHistogram::new(base_frequency),
        FreqHistogram::new(base_frequency),
    ];
    let base_hz = base_frequency.as_hz() as f64;
    let base_period = base_frequency.period().as_femtos() as f64;
    for (i, m) in dag.meta.iter().enumerate() {
        if m.domain == DomainId::FrontEnd {
            continue;
        }
        let cycles = m.domain_cycles;
        if cycles <= 0.0 {
            continue;
        }
        // Half a cycle of each event's harvested slack is issue-alignment
        // quantization in the measured schedule, not time the event could
        // really yield at a lower clock (along a dense dependence chain
        // every hop shows such sub-cycle gaps, and harvesting them would
        // let the tool scale a fully busy domain). Discount it.
        let orig_fs = (m.orig_end - m.orig_start).as_femtos() as f64;
        let stretched_fs = dag.scales[i] * orig_fs - 0.5 * base_period;
        let scale_eff = (stretched_fs / orig_fs).max(1.0);
        let f = Frequency::from_hz((base_hz / scale_eff).round().max(1.0) as u64);
        hists[m.domain.index()].add(f, cycles);
    }
    hists
}

/// Stretches node `i` into `slack` femtoseconds (backward: toward its end;
/// forward: toward its start) honoring the threshold and scale cap. Shared
/// by the full-sweep and worklist implementations so the arithmetic cannot
/// drift. Returns the new scale if the node was stretched.
#[inline]
fn stretch_node(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    threshold: f64,
    i: usize,
    slack: f64,
) -> Option<f64> {
    let orig = (dag.meta[i].orig_end - dag.meta[i].orig_start).as_femtos() as f64;
    let cur = (dag.ends[i] - dag.starts[i]).as_femtos() as f64;
    // Stretch until the slack is consumed, the ¼-frequency cap is hit,
    // or the power factor falls below the threshold.
    let scale_by_slack = (cur + slack) / orig;
    let scale_by_threshold = if threshold > 0.0 {
        (dag.powers[i] * dag.scales[i] * dag.scales[i] / threshold).sqrt()
    } else {
        f64::INFINITY
    };
    let new_scale = scale_by_slack.min(scale_by_threshold).min(cfg.max_scale);
    if new_scale > dag.scales[i] {
        dag.scales[i] = new_scale;
        dag.powers[i] = dag.powers[i] * (cur / orig) * (cur / orig) / (new_scale * new_scale);
        Some(new_scale)
    } else {
        None
    }
}

fn backward_pass_full(dag: &mut IntervalDag, cfg: &ShakerConfig, threshold: f64, order: &[u32]) {
    for &i in order {
        let i = i as usize;
        if !dag.meta[i].scalable || dag.powers[i] <= threshold {
            continue;
        }
        let limit = dag.out_limit(i);
        if limit <= dag.ends[i] {
            continue; // no outgoing slack
        }
        backward_visit(dag, cfg, threshold, i, limit);
    }
}

/// The backward-direction act: stretch into the outgoing slack, then push
/// the event as late as possible so the remaining slack moves to its
/// incoming edges.
#[inline]
fn backward_visit(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    threshold: f64,
    i: usize,
    limit: Femtos,
) {
    let slack = (limit - dag.ends[i]).as_femtos() as f64;
    if let Some(new_scale) = stretch_node(dag, cfg, threshold, i, slack) {
        let orig = (dag.meta[i].orig_end - dag.meta[i].orig_start).as_femtos() as f64;
        dag.ends[i] = dag.starts[i] + Femtos::from_femtos((orig * new_scale).round() as u64);
    }
    let n_end = dag.ends[i];
    if limit > n_end {
        let shift = limit - n_end;
        dag.starts[i] += shift;
        dag.ends[i] += shift;
    }
}

fn forward_pass_full(dag: &mut IntervalDag, cfg: &ShakerConfig, threshold: f64, order: &[u32]) {
    for &i in order {
        let i = i as usize;
        if !dag.meta[i].scalable || dag.powers[i] <= threshold {
            continue;
        }
        let limit = dag.in_limit(i);
        if limit >= dag.starts[i] {
            continue; // no incoming slack
        }
        forward_visit(dag, cfg, threshold, i, limit);
    }
}

/// The forward-direction act: stretch into the incoming slack, then pull
/// the event as early as possible so the remaining slack moves to its
/// outgoing edges.
#[inline]
fn forward_visit(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    threshold: f64,
    i: usize,
    limit: Femtos,
) {
    let slack = (dag.starts[i] - limit).as_femtos() as f64;
    if let Some(new_scale) = stretch_node(dag, cfg, threshold, i, slack) {
        let orig = (dag.meta[i].orig_end - dag.meta[i].orig_start).as_femtos() as f64;
        dag.starts[i] = dag.ends[i] - Femtos::from_femtos((orig * new_scale).round() as u64);
    }
    let n_start = dag.starts[i];
    if limit < n_start {
        let shift = n_start - limit;
        dag.starts[i] -= shift;
        dag.ends[i] -= shift;
    }
}

fn backward_sweep(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    threshold: f64,
    order: &[u32],
    pending_b: &mut [bool],
    pending_f: &mut [bool],
) {
    for &iu in order {
        let i = iu as usize;
        if !pending_b[i] {
            continue;
        }
        // Only scalable nodes are ever marked pending. A node at or below
        // the threshold stays pending: the threshold falls every pass.
        if dag.powers[i] <= threshold {
            continue;
        }
        pending_b[i] = false;
        let limit = dag.out_limit(i);
        if limit <= dag.ends[i] {
            continue; // no outgoing slack; a successor move re-marks us
        }
        let old_start = dag.starts[i];
        backward_visit(dag, cfg, threshold, i, limit);
        if dag.starts[i] != old_start {
            // The node moved later: its predecessors' outgoing slack and
            // its own incoming slack may have grown.
            for &p in dag.preds(i) {
                let p = p as usize;
                if dag.meta[p].scalable {
                    pending_b[p] = true;
                }
            }
            pending_f[i] = true;
        }
    }
}

fn forward_sweep(
    dag: &mut IntervalDag,
    cfg: &ShakerConfig,
    threshold: f64,
    order: &[u32],
    pending_b: &mut [bool],
    pending_f: &mut [bool],
) {
    for &iu in order {
        let i = iu as usize;
        if !pending_f[i] {
            continue;
        }
        if dag.powers[i] <= threshold {
            continue;
        }
        pending_f[i] = false;
        let limit = dag.in_limit(i);
        if limit >= dag.starts[i] {
            continue; // no incoming slack; a predecessor move re-marks us
        }
        let old_end = dag.ends[i];
        forward_visit(dag, cfg, threshold, i, limit);
        if dag.ends[i] != old_end {
            // The node moved earlier: its successors' incoming slack and
            // its own outgoing slack may have grown.
            for &s in dag.succs(i) {
                let s = s as usize;
                if dag.meta[s].scalable {
                    pending_f[s] = true;
                }
            }
            pending_b[i] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Node;
    use mcd_pipeline::EventKind;
    use proptest::prelude::*;

    /// Builds a hand-rolled two-node chain with `gap` femtoseconds of slack
    /// between them inside a closed interval.
    fn chain_dag(gap: u64) -> IntervalDag {
        let mk = |instr, s: u64, e: u64, scalable| Node {
            instr,
            kind: EventKind::Execute,
            domain: DomainId::Integer,
            orig_start: Femtos::from_femtos(s),
            orig_end: Femtos::from_femtos(e),
            start: Femtos::from_femtos(s),
            end: Femtos::from_femtos(e),
            scale: 1.0,
            power: 1.0,
            scalable,
            domain_cycles: (e - s) as f64 / 1_000_000.0,
        };
        IntervalDag::from_events(
            Femtos::ZERO,
            Femtos::from_femtos(4_000 + gap),
            2,
            vec![mk(0, 0, 1_000, true), mk(1, 1_000 + gap, 2_000 + gap, true)],
            &[(0, 1)],
        )
    }

    #[test]
    fn shaker_consumes_slack() {
        let mut dag = chain_dag(3_000);
        let before = dag.total_slack();
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        let after = dag.total_slack();
        assert!(after < before, "slack should shrink: {before} -> {after}");
        assert!(dag.nodes().any(|n| n.scale > 1.0));
    }

    #[test]
    fn shaker_respects_quarter_frequency_cap() {
        let mut dag = chain_dag(1_000_000); // oceans of slack
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        for n in dag.nodes() {
            assert!(n.scale <= 4.0 + 1e-9, "scale {}", n.scale);
        }
    }

    #[test]
    fn shaker_never_violates_dependences() {
        let mut dag = chain_dag(2_500);
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        // Successor must still start no earlier than predecessor ends.
        assert!(dag.end_of(0) <= dag.start_of(1));
        // Nothing may leave the interval.
        for n in dag.nodes() {
            assert!(n.start >= dag.start && n.end <= dag.end);
        }
    }

    #[test]
    fn unscalable_nodes_are_untouched() {
        let mut dag = chain_dag(3_000);
        dag.meta[0].scalable = false;
        dag.meta[1].scalable = false;
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        assert_eq!(dag.scale_of(0), 1.0);
        assert_eq!(dag.start_of(0), Femtos::ZERO);
        assert_eq!(dag.scale_of(1), 1.0);
    }

    #[test]
    fn no_slack_means_no_stretching() {
        let mut dag = chain_dag(0);
        dag.end = Femtos::from_femtos(2_000); // seal the interval tight
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        assert_eq!(dag.scale_of(0), 1.0);
        assert_eq!(dag.scale_of(1), 1.0);
    }

    #[test]
    fn histograms_book_scaled_cycles() {
        let mut dag = chain_dag(3_000);
        let hists = run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        let int_hist = &hists[DomainId::Integer.index()];
        // Two 1000-cycle events (1000 fs @ 1 GHz = 1 cycle each... in fs:
        // 1000 fs is 0.001 cycles; just check mass is positive and finite).
        assert!(int_hist.total_cycles() > 0.0);
        assert!(hists[DomainId::FloatingPoint.index()].is_empty());
    }

    #[test]
    fn power_factor_drops_quadratically_with_scale() {
        let mut dag = chain_dag(3_000);
        run_shaker(&mut dag, &ShakerConfig::default(), Frequency::GHZ);
        for n in dag.nodes() {
            let expected = 1.0 / (n.scale * n.scale);
            assert!(
                (n.power - expected).abs() / expected < 1e-3,
                "power {} scale {}",
                n.power,
                n.scale
            );
        }
    }

    #[test]
    fn scratch_is_reusable_across_intervals() {
        let mut scratch = AnalysisScratch::new();
        let mut a = chain_dag(3_000);
        let mut b = chain_dag(500);
        let ha = run_shaker_with(
            &mut a,
            &ShakerConfig::default(),
            Frequency::GHZ,
            &mut scratch,
        );
        let hb = run_shaker_with(
            &mut b,
            &ShakerConfig::default(),
            Frequency::GHZ,
            &mut scratch,
        );
        let mut fresh_a = chain_dag(3_000);
        let mut fresh_b = chain_dag(500);
        assert_eq!(
            ha,
            run_shaker(&mut fresh_a, &ShakerConfig::default(), Frequency::GHZ)
        );
        assert_eq!(
            hb,
            run_shaker(&mut fresh_b, &ShakerConfig::default(), Frequency::GHZ)
        );
    }

    /// A random but valid interval DAG: a few parallel chains over a closed
    /// interval, with random gaps, durations, scalability flags and
    /// cross-chain edges (kept only when they carry non-negative slack —
    /// `from_events` drops the rest, as the real builder does).
    fn arb_dag() -> impl Strategy<Value = IntervalDag> {
        let node = (1u64..2_000, 0u64..3_000, any::<bool>());
        (
            proptest::collection::vec(proptest::collection::vec(node, 1..8), 1..4),
            proptest::collection::vec((0usize..32, 0usize..32), 0..8),
        )
            .prop_map(|(chains, cross)| {
                let mut nodes = Vec::new();
                let mut edges = Vec::new();
                for chain in &chains {
                    let mut t = 0u64;
                    let mut prev: Option<u32> = None;
                    for &(dur, gap, scalable) in chain {
                        t += gap;
                        let id = nodes.len() as u32;
                        nodes.push(Node {
                            instr: id as u64,
                            kind: EventKind::Execute,
                            domain: if id.is_multiple_of(3) {
                                DomainId::FloatingPoint
                            } else {
                                DomainId::Integer
                            },
                            orig_start: Femtos::from_femtos(t),
                            orig_end: Femtos::from_femtos(t + dur),
                            start: Femtos::from_femtos(t),
                            end: Femtos::from_femtos(t + dur),
                            scale: 1.0,
                            power: [0.8, 1.0, 0.9][id as usize % 3],
                            scalable,
                            domain_cycles: dur as f64 / 1_000_000.0,
                        });
                        if let Some(p) = prev {
                            edges.push((p, id));
                        }
                        prev = Some(id);
                        t += dur;
                    }
                }
                let n = nodes.len() as u32;
                for (a, b) in cross {
                    let (a, b) = (a as u32 % n, b as u32 % n);
                    if a != b {
                        edges.push((a, b));
                    }
                }
                let end = nodes
                    .iter()
                    .map(|nd| nd.orig_end)
                    .fold(Femtos::ZERO, Femtos::max);
                let count = nodes.len() as u64;
                IntervalDag::from_events(
                    Femtos::ZERO,
                    end + Femtos::from_femtos(2_500),
                    count,
                    nodes,
                    &edges,
                )
            })
    }

    proptest! {
        /// The worklist sweeps must match the full-sweep reference exactly:
        /// same scales, same final event times, same booked histograms.
        #[test]
        fn worklist_matches_full_sweeps(dag in arb_dag(), passes in 1usize..12) {
            let cfg = ShakerConfig { max_scale: 4.0, passes };
            let mut work = dag.clone();
            let mut full = dag;
            let hw = run_shaker_with(
                &mut work, &cfg, Frequency::GHZ, &mut AnalysisScratch::new(),
            );
            let hf = run_shaker_reference(&mut full, &cfg, Frequency::GHZ);
            prop_assert_eq!(&work.scales, &full.scales);
            prop_assert_eq!(&work.starts, &full.starts);
            prop_assert_eq!(&work.ends, &full.ends);
            prop_assert_eq!(&work.powers, &full.powers);
            prop_assert_eq!(hw, hf);
        }
    }
}
