//! Interval clustering and schedule emission (§3.2, final phase).
//!
//! Frequencies cannot change instantaneously: the clustering phase takes the
//! per-interval histograms produced by the shaker and (a) picks, per domain
//! and interval, the minimum grid frequency that keeps dilation within the
//! target θ, (b) merges adjacent intervals when running the combined
//! interval at one frequency is energetically profitable — under Transmeta,
//! avoiding a PLL re-lock often pays for a slightly higher merged frequency —
//! and (c) emits the reconfiguration log, scheduling each request early
//! enough that the target is reached at the target time, and *skipping*
//! reconfigurations that cannot complete within the available window.

use serde::{Deserialize, Serialize};

use mcd_pipeline::{DomainId, FrequencySchedule, ScheduleEntry};
use mcd_time::{DvfsModel, Femtos, Frequency, FrequencyGrid, PllModel, VfTable};

use crate::histogram::FreqHistogram;

/// A maximal run of merged intervals for one domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Cluster start time (trace time).
    pub start: Femtos,
    /// Cluster end time.
    pub end: Femtos,
    /// Chosen frequency for the whole cluster.
    pub frequency: Frequency,
    /// Total cycle mass (work) in the cluster.
    pub cycles: f64,
}

impl Cluster {
    /// Cluster duration.
    pub fn duration(&self) -> Femtos {
        self.end - self.start
    }
}

/// Clustering parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Allowed dilation as a fraction of interval length (θ).
    pub dilation_target: f64,
    /// De-rating factor applied to the dilation budget. The analytic
    /// dilation model ignores second-order structural effects (issue-queue
    /// and ROB back-pressure when the domain slows), so the measured
    /// slowdown of the dynamic run exceeds the analytic θ; the safety
    /// factor compensates, calibrated so that measured degradation of the
    /// dynamic-θ configurations lands near the paper's.
    pub budget_safety: f64,
    /// DVFS transition model (grid granularity + re-lock cost).
    pub model: DvfsModel,
    /// Operating region.
    pub vf: VfTable,
    /// PLL re-lock model.
    pub pll: PllModel,
}

/// Clusters one domain's per-interval histograms into a frequency plan.
///
/// `intervals` are `(start, end, histogram)` in time order.
pub fn cluster_domain(
    intervals: &[(Femtos, Femtos, FreqHistogram)],
    cfg: &ClusterConfig,
) -> Vec<Cluster> {
    let grid = cfg.model.grid(cfg.vf);
    let mut clusters: Vec<(Femtos, Femtos, FreqHistogram)> = intervals.to_vec();
    // Greedy pairwise merging to a fixed point.
    loop {
        let mut merged_any = false;
        let mut out: Vec<(Femtos, Femtos, FreqHistogram)> = Vec::with_capacity(clusters.len());
        let mut iter = clusters.into_iter();
        let mut current = match iter.next() {
            Some(c) => c,
            None => return Vec::new(),
        };
        for next in iter {
            if should_merge(&current, &next, cfg, &grid) {
                current.1 = next.1;
                current.2.merge(&next.2);
                merged_any = true;
            } else {
                out.push(current);
                current = next;
            }
        }
        out.push(current);
        clusters = out;
        if !merged_any {
            break;
        }
    }
    clusters
        .into_iter()
        .map(|(start, end, hist)| {
            let budget = budget_for(start, end, cfg);
            Cluster {
                start,
                end,
                frequency: hist.choose_frequency(&grid, budget),
                cycles: hist.total_cycles(),
            }
        })
        .collect()
}

fn budget_for(start: Femtos, end: Femtos, cfg: &ClusterConfig) -> Femtos {
    Femtos::from_femtos(
        ((end - start).as_femtos() as f64 * cfg.dilation_target * cfg.budget_safety).round() as u64,
    )
}

/// Merge test for two adjacent clusters.
///
/// The paper observes that "most mergers under the XScale model occur when
/// adjacent intervals have identical or nearly identical target
/// frequencies", while "merging intervals under the Transmeta model often
/// allows us to run the combined interval at a lower frequency and voltage"
/// because it eliminates a costly re-lock. We implement exactly those two
/// criteria: (a) nearly identical targets always merge; (b) under Transmeta,
/// if reconfiguring (whose idle time is charged against the second
/// interval's dilation budget) would not let the domain run any slower than
/// the merged choice, the reconfiguration is not worth it and the intervals
/// merge.
///
/// A naive "merge when combined energy is lower" test degenerates: pooling
/// the dilation budget over a longer window always lets the busy side run
/// slightly slower, which quadratically outweighs the idle side's loss, and
/// everything collapses into one flat cluster — destroying precisely the
/// temporal adaptivity the MCD design exists to exploit.
fn should_merge(
    a: &(Femtos, Femtos, FreqHistogram),
    b: &(Femtos, Femtos, FreqHistogram),
    cfg: &ClusterConfig,
    grid: &FrequencyGrid,
) -> bool {
    let budget_a = budget_for(a.0, a.1, cfg);
    let budget_b = budget_for(b.0, b.1, cfg);
    let relock = cfg.model.relock_idle_mean(&cfg.pll);
    // In the separate configuration, a Transmeta boundary reconfiguration
    // idles the domain; that idle time comes out of the dilation budget.
    let f_a = a.2.choose_frequency(grid, budget_a);
    let f_b = b.2.choose_frequency(grid, budget_b.saturating_sub(relock));
    // Nearly identical targets (within one grid step) merge.
    let step_hz = grid.point(1).frequency.as_hz() - grid.point(0).frequency.as_hz();
    if f_a.as_hz().abs_diff(f_b.as_hz()) <= step_hz {
        return true;
    }
    if cfg.model == DvfsModel::Transmeta {
        // Would reconfiguring actually buy a lower frequency than simply
        // running the combined interval at one speed?
        let mut merged = a.2.clone();
        merged.merge(&b.2);
        let budget_m = budget_for(a.0, b.1, cfg);
        let f_m = merged.choose_frequency(grid, budget_m);
        if f_b >= f_m && f_a >= f_m {
            return true;
        }
    }
    false
}

/// Emits the reconfiguration log for one domain from its cluster plan.
///
/// Requests are issued `transition latency` early so the target frequency is
/// reached at the cluster boundary; a change whose transition cannot fit in
/// the preceding cluster is skipped (the paper: "If reconfiguration is not
/// possible … it is avoided").
pub fn emit_schedule(
    domain: DomainId,
    clusters: &[Cluster],
    cfg: &ClusterConfig,
    base_frequency: Frequency,
) -> Vec<ScheduleEntry> {
    let mut entries = Vec::new();
    let mut current = base_frequency;
    let relock = cfg.model.relock_idle_mean(&cfg.pll);
    // §3.2: "the time dilation of too-slow events together with the time
    // required to reconfigure at interval boundaries [must] not exceed θ
    // percent of total execution time" — re-lock idle draws from a budget
    // pooled over the whole run, which is what makes the Transmeta model
    // unable to accommodate short intervals.
    let total_span = clusters.last().map(|c| c.end).unwrap_or(Femtos::ZERO);
    let mut relock_pool = budget_for(Femtos::ZERO, total_span, cfg);
    for (i, c) in clusters.iter().enumerate() {
        if c.frequency == current {
            continue;
        }
        if relock > relock_pool {
            continue;
        }
        let latency = cfg
            .model
            .transition_latency_mean(&cfg.vf, &cfg.pll, current, c.frequency);
        // The transition must fit in the *previous* cluster (or before time
        // zero for the first one).
        let prev_len = if i == 0 {
            c.start
        } else {
            clusters[i - 1].duration()
        };
        if latency > prev_len && i > 0 {
            continue; // cannot reach the target in time: skip
        }
        let at = c.start.saturating_sub(latency);
        entries.push(ScheduleEntry {
            at,
            domain,
            frequency: c.frequency,
        });
        current = c.frequency;
        relock_pool = relock_pool.saturating_sub(relock);
    }
    entries
}

/// Per-domain summary statistics of a frequency plan (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainPlanStats {
    /// Number of reconfigurations actually scheduled.
    pub reconfigurations: usize,
    /// Time-weighted mean frequency in hertz.
    pub mean_frequency_hz: f64,
    /// Lowest frequency in the plan.
    pub min_frequency: Frequency,
    /// Highest frequency in the plan.
    pub max_frequency: Frequency,
}

/// Computes Figure-9-style statistics from a schedule and the run length.
pub fn plan_stats(
    domain: DomainId,
    schedule: &FrequencySchedule,
    base_frequency: Frequency,
    run_end: Femtos,
) -> DomainPlanStats {
    let mut t = Femtos::ZERO;
    let mut f = base_frequency;
    let mut weighted = 0.0;
    let mut min_f = base_frequency;
    let mut max_f = base_frequency;
    let mut count = 0;
    for e in schedule.for_domain(domain) {
        let at = e.at.min(run_end);
        weighted += f.as_hz() as f64 * (at - t).as_secs_f64();
        t = at;
        f = e.frequency;
        min_f = min_f.min(f);
        max_f = max_f.max(f);
        count += 1;
    }
    weighted += f.as_hz() as f64 * (run_end.saturating_sub(t)).as_secs_f64();
    let mean = if run_end > Femtos::ZERO {
        weighted / run_end.as_secs_f64()
    } else {
        base_frequency.as_hz() as f64
    };
    DomainPlanStats {
        reconfigurations: count,
        mean_frequency_hz: mean,
        min_frequency: min_f,
        max_frequency: max_f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(model: DvfsModel) -> ClusterConfig {
        ClusterConfig {
            dilation_target: 0.05,
            budget_safety: 1.0,
            model,
            vf: VfTable::paper(),
            pll: PllModel::paper(),
        }
    }

    fn busy_hist() -> FreqHistogram {
        let mut h = FreqHistogram::new(Frequency::GHZ);
        h.add(Frequency::GHZ, 40_000.0); // 40 µs of full-speed work
        h
    }

    fn idle_hist() -> FreqHistogram {
        let mut h = FreqHistogram::new(Frequency::GHZ);
        h.add(Frequency::MIN_SCALED, 4_000.0);
        h
    }

    fn us(n: u64) -> Femtos {
        Femtos::from_micros(n)
    }

    #[test]
    fn busy_interval_stays_fast_idle_interval_scales() {
        let intervals = vec![(us(0), us(50), busy_hist()), (us(50), us(100), idle_hist())];
        let clusters = cluster_domain(&intervals, &cfg(DvfsModel::XScale));
        assert_eq!(clusters.len(), 2, "dissimilar intervals should not merge");
        assert!(clusters[0].frequency > Frequency::from_mhz(900));
        assert_eq!(clusters[1].frequency, Frequency::MIN_SCALED);
    }

    #[test]
    fn identical_intervals_merge() {
        let intervals = vec![
            (us(0), us(50), idle_hist()),
            (us(50), us(100), idle_hist()),
            (us(100), us(150), idle_hist()),
        ];
        let clusters = cluster_domain(&intervals, &cfg(DvfsModel::XScale));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].start, us(0));
        assert_eq!(clusters[0].end, us(150));
    }

    #[test]
    fn transmeta_merges_more_aggressively() {
        // Alternating busy/idle at 50 µs granularity: XScale can follow,
        // Transmeta's ~15 µs re-locks burn the budget and force merging.
        let mut intervals = Vec::new();
        for i in 0..8u64 {
            let h = if i % 2 == 0 { busy_hist() } else { idle_hist() };
            intervals.push((us(i * 50), us((i + 1) * 50), h));
        }
        let xs = cluster_domain(&intervals, &cfg(DvfsModel::XScale));
        let tm = cluster_domain(&intervals, &cfg(DvfsModel::Transmeta));
        assert!(
            tm.len() <= xs.len(),
            "Transmeta should cluster at least as coarsely: {} vs {}",
            tm.len(),
            xs.len()
        );
    }

    #[test]
    fn schedule_requests_lead_their_targets() {
        let mut very_busy = FreqHistogram::new(Frequency::GHZ);
        very_busy.add(Frequency::GHZ, 480_000.0); // 480 µs of work in 500 µs
        let intervals = vec![
            (us(0), us(500), very_busy),
            (us(500), us(1000), idle_hist()),
        ];
        let clusters = cluster_domain(&intervals, &cfg(DvfsModel::XScale));
        assert_eq!(clusters.len(), 2);
        let entries = emit_schedule(
            DomainId::FloatingPoint,
            &clusters,
            &cfg(DvfsModel::XScale),
            Frequency::GHZ,
        );
        // Scaling down under XScale slews ~55 µs across the full range; the
        // request for the idle cluster must precede its start.
        let last = entries.last().expect("idle cluster needs a request");
        assert_eq!(last.frequency, Frequency::MIN_SCALED);
        assert!(last.at < us(500));
        assert!(
            us(500) - last.at >= us(40),
            "lead time too small: {}",
            last.at
        );
    }

    #[test]
    fn infeasible_transition_is_skipped() {
        // A 1 µs cluster cannot host a full-range Transmeta ramp-up
        // (~640 µs), so the up-reconfiguration after it must be dropped.
        let mut h_fast = FreqHistogram::new(Frequency::GHZ);
        h_fast.add(Frequency::GHZ, 900.0); // needs full speed in 1 µs
        let clusters = vec![
            Cluster {
                start: us(0),
                end: us(600),
                frequency: Frequency::MIN_SCALED,
                cycles: 1.0,
            },
            Cluster {
                start: us(600),
                end: us(601),
                frequency: Frequency::GHZ,
                cycles: 900.0,
            },
        ];
        let entries = emit_schedule(
            DomainId::Integer,
            &clusters,
            &cfg(DvfsModel::Transmeta),
            Frequency::MIN_SCALED,
        );
        // The up-transition needs ~655 µs but only 600 µs precede it — but
        // 600 µs < 655 µs, so it is skipped.
        assert!(entries.is_empty(), "got {entries:?}");
    }

    #[test]
    fn no_entries_when_plan_is_flat() {
        let clusters = vec![Cluster {
            start: us(0),
            end: us(100),
            frequency: Frequency::GHZ,
            cycles: 10.0,
        }];
        let entries = emit_schedule(
            DomainId::Integer,
            &clusters,
            &cfg(DvfsModel::XScale),
            Frequency::GHZ,
        );
        assert!(entries.is_empty());
    }

    #[test]
    fn plan_stats_weight_by_time() {
        let schedule = FrequencySchedule::from_entries(vec![ScheduleEntry {
            at: us(50),
            domain: DomainId::Integer,
            frequency: Frequency::from_mhz(500),
        }]);
        let stats = plan_stats(DomainId::Integer, &schedule, Frequency::GHZ, us(100));
        assert_eq!(stats.reconfigurations, 1);
        // Half the run at 1 GHz, half at 500 MHz.
        assert!((stats.mean_frequency_hz - 750e6).abs() < 1e6);
        assert_eq!(stats.min_frequency, Frequency::from_mhz(500));
        assert_eq!(stats.max_frequency, Frequency::GHZ);
    }
}
