//! Off-line slack analysis and reconfiguration scheduling for the MCD
//! processor (§3.2 of the paper).
//!
//! "We employ an off-line tool that analyzes a trace collected during a
//! full-speed run of an application in an attempt to determine the minimum
//! frequencies and voltages that could have been used by various domains
//! during various parts of the run without significantly increasing
//! execution time."
//!
//! The pipeline goes: event trace → per-50K-cycle dependence DAGs
//! ([`dag`]) → the shaker stretching algorithm ([`shaker`]) → per-domain
//! frequency histograms ([`histogram`]) → interval clustering with
//! model-aware reconfiguration costs ([`cluster`]) → a
//! [`mcd_pipeline::FrequencySchedule`] replayed in a second, dynamic run
//! ([`tool`]).
//!
//! ```no_run
//! use mcd_offline::{derive_schedule, OfflineConfig};
//! use mcd_time::DvfsModel;
//! use mcd_workload::suites;
//!
//! let profile = suites::by_name("art").expect("known benchmark");
//! let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
//! let (analysis, _trace_run) = derive_schedule(1, &profile, 50_000, &cfg);
//! println!("{} reconfigurations", analysis.schedule.len());
//! ```

pub mod cluster;
pub mod dag;
pub mod histogram;
pub mod shaker;
pub mod tool;

pub use cluster::{Cluster, ClusterConfig, DomainPlanStats};
pub use dag::{build_interval_dags, IntervalDag, Node, PowerFactors};
pub use histogram::{FreqHistogram, HISTOGRAM_BINS};
pub use shaker::{
    run_shaker, run_shaker_reference, run_shaker_with, AnalysisScratch, ShakerConfig,
};
pub use tool::{
    analyze, cluster_schedule, derive_schedule, prepare_slack, prepare_slack_threads,
    slack_cache_key_material, AnalysisOutput, OfflineConfig, SlackProfile, SLACK_PROFILE_FORMAT,
};
