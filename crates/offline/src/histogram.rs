//! Per-domain frequency histograms (§3.2).
//!
//! After the shaker finishes an interval, each scaled event lands in one of
//! 320 frequency bins (the XScale step count — "being the maximum of the
//! number of steps for the two models"), weighted by the event's cycle
//! count. The clustering phase then picks the minimum domain frequency whose
//! total dilation stays within the target.

use serde::{Deserialize, Serialize};

use mcd_time::{Femtos, Frequency, FrequencyGrid};

/// Number of histogram bins: the finer (XScale) grid.
pub const HISTOGRAM_BINS: usize = 320;

/// A cycle-weighted frequency histogram for one domain and interval.
///
/// # Example
///
/// ```
/// use mcd_offline::FreqHistogram;
/// use mcd_time::Frequency;
///
/// let mut h = FreqHistogram::new(Frequency::GHZ);
/// h.add(Frequency::from_mhz(500), 100.0);
/// h.add(Frequency::GHZ, 50.0);
/// assert_eq!(h.total_cycles(), 150.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqHistogram {
    /// Cycle mass per bin, lowest frequency first.
    bins: Vec<f64>,
    /// The full-speed frequency (top of the range).
    base: Frequency,
}

impl FreqHistogram {
    /// Creates an empty histogram over `250 MHz .. base`.
    pub fn new(base: Frequency) -> Self {
        FreqHistogram {
            bins: vec![0.0; HISTOGRAM_BINS],
            base,
        }
    }

    /// The frequency at the center of bin `i`.
    pub fn bin_frequency(&self, i: usize) -> Frequency {
        let lo = self.base.as_hz() as f64 / 4.0;
        let hi = self.base.as_hz() as f64;
        let f = lo + (hi - lo) * i as f64 / (HISTOGRAM_BINS - 1) as f64;
        Frequency::from_hz(f.round() as u64)
    }

    /// The bin index for a frequency (clamped to the range).
    pub fn bin_for(&self, f: Frequency) -> usize {
        self.bin_for_hz(f.as_hz() as f64)
    }

    /// The bin index for a raw frequency in Hz, always in
    /// `0..HISTOGRAM_BINS`.
    ///
    /// Accepts the full `f64` range: frequencies below the 250 MHz floor or
    /// above `base` (chaos-feature grids produce both) clamp to the end
    /// bins, and non-finite values cannot escape the range — `NaN` lands in
    /// bin 0 rather than poisoning the index arithmetic.
    pub fn bin_for_hz(&self, hz: f64) -> usize {
        let lo = self.base.as_hz() as f64 / 4.0;
        let hi = self.base.as_hz() as f64;
        let t = (hz - lo) / (hi - lo);
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        let bin = (t * (HISTOGRAM_BINS - 1) as f64).round() as usize;
        bin.min(HISTOGRAM_BINS - 1)
    }

    /// Adds `cycles` of work that the shaker scaled to run at `f`.
    pub fn add(&mut self, f: Frequency, cycles: f64) {
        let bin = self.bin_for(f);
        self.bins[bin] += cycles;
    }

    /// Total cycle mass.
    pub fn total_cycles(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Whether no work was recorded.
    pub fn is_empty(&self) -> bool {
        self.total_cycles() == 0.0
    }

    /// Bin-wise merge (used when clustering adjacent intervals).
    pub fn merge(&mut self, other: &FreqHistogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
    }

    /// Extra execution time incurred if the whole domain runs at `f`: the
    /// sum over bins *above* `f` of `cycles × (1/f − 1/f_bin)`.
    pub fn dilation_at(&self, f: Frequency) -> Femtos {
        let f_hz = f.as_hz() as f64;
        let mut extra = 0.0; // seconds
        for (i, &cycles) in self.bins.iter().enumerate() {
            if cycles == 0.0 {
                continue;
            }
            let fb = self.bin_frequency(i).as_hz() as f64;
            if fb > f_hz {
                extra += cycles * (1.0 / f_hz - 1.0 / fb);
            }
        }
        Femtos::from_secs_f64(extra.max(0.0))
    }

    /// The minimum grid frequency keeping dilation within `budget`.
    /// Returns the top grid point if even that dilates (it never does when
    /// the grid top equals the base frequency).
    pub fn choose_frequency(&self, grid: &FrequencyGrid, budget: Femtos) -> Frequency {
        for p in grid.points() {
            if self.dilation_at(p.frequency) <= budget {
                return p.frequency;
            }
        }
        grid.points().last().expect("grid non-empty").frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::FrequencyGrid;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        // Full-f64-range robustness: raw bit patterns cover NaN, ±inf,
        // subnormals, negatives and astronomically large values. Whatever
        // comes in, the bin index must stay inside 0..HISTOGRAM_BINS.
        #[test]
        fn bin_for_hz_never_escapes_the_bin_range(
            bits in any::<u64>(),
            base_hz in 1u64..10_000_000_000,
        ) {
            let h = FreqHistogram::new(Frequency::from_hz(base_hz));
            let hz = f64::from_bits(bits);
            prop_assert!(h.bin_for_hz(hz) < HISTOGRAM_BINS);
        }

        // Representable frequencies (the `add` path) are likewise clamped,
        // even far outside the 250 MHz..base region.
        #[test]
        fn bin_for_clamps_out_of_range_frequencies(
            hz in 1u64..u64::MAX,
            base_hz in 1u64..10_000_000_000,
        ) {
            let h = FreqHistogram::new(Frequency::from_hz(base_hz));
            let bin = h.bin_for(Frequency::from_hz(hz));
            prop_assert!(bin < HISTOGRAM_BINS);
        }
    }

    #[test]
    fn bin_round_trip() {
        let h = FreqHistogram::new(Frequency::GHZ);
        for i in [0, 1, 100, 319] {
            let f = h.bin_frequency(i);
            assert_eq!(h.bin_for(f), i);
        }
        assert_eq!(h.bin_frequency(0), Frequency::MIN_SCALED);
        assert_eq!(h.bin_frequency(HISTOGRAM_BINS - 1), Frequency::GHZ);
    }

    #[test]
    fn dilation_zero_at_top_frequency() {
        let mut h = FreqHistogram::new(Frequency::GHZ);
        h.add(Frequency::from_mhz(600), 1000.0);
        h.add(Frequency::GHZ, 500.0);
        assert_eq!(h.dilation_at(Frequency::GHZ), Femtos::ZERO);
    }

    #[test]
    fn dilation_grows_as_frequency_drops() {
        let mut h = FreqHistogram::new(Frequency::GHZ);
        h.add(Frequency::GHZ, 10_000.0);
        let d_750 = h.dilation_at(Frequency::from_mhz(750));
        let d_500 = h.dilation_at(Frequency::from_mhz(500));
        let d_250 = h.dilation_at(Frequency::MIN_SCALED);
        assert!(d_750 < d_500 && d_500 < d_250);
        // 10 000 cycles at 1 GHz = 10 µs; at 500 MHz they take 20 µs.
        assert_eq!(d_500, Femtos::from_micros(10));
    }

    #[test]
    fn choose_frequency_respects_budget() {
        let mut h = FreqHistogram::new(Frequency::GHZ);
        h.add(Frequency::GHZ, 10_000.0); // 10 µs of critical work
        let grid = FrequencyGrid::paper32();
        // 1 % of a 50 µs interval = 0.5 µs budget: must stay fast.
        let strict = h.choose_frequency(&grid, Femtos::from_femtos(500_000_000));
        // A very generous budget allows the bottom of the grid.
        let loose = h.choose_frequency(&grid, Femtos::from_millis(1));
        assert!(strict > Frequency::from_mhz(900), "strict {strict}");
        assert_eq!(loose, Frequency::MIN_SCALED);
    }

    #[test]
    fn choose_frequency_ignores_work_already_slow() {
        let mut h = FreqHistogram::new(Frequency::GHZ);
        h.add(Frequency::MIN_SCALED, 1_000_000.0);
        let grid = FrequencyGrid::paper32();
        assert_eq!(
            h.choose_frequency(&grid, Femtos::ZERO),
            Frequency::MIN_SCALED
        );
    }

    #[test]
    fn merge_adds_mass() {
        let mut a = FreqHistogram::new(Frequency::GHZ);
        let mut b = FreqHistogram::new(Frequency::GHZ);
        a.add(Frequency::from_mhz(500), 10.0);
        b.add(Frequency::from_mhz(500), 5.0);
        b.add(Frequency::GHZ, 1.0);
        a.merge(&b);
        assert_eq!(a.total_cycles(), 16.0);
    }

    #[test]
    fn empty_histogram_chooses_bottom() {
        let h = FreqHistogram::new(Frequency::GHZ);
        assert!(h.is_empty());
        let grid = FrequencyGrid::paper32();
        assert_eq!(
            h.choose_frequency(&grid, Femtos::ZERO),
            Frequency::MIN_SCALED
        );
    }
}
