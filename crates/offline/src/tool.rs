//! End-to-end off-line analysis: trace → DAGs → shaker → histograms →
//! clustering → reconfiguration schedule.
//!
//! This reproduces the paper's methodology: run the application once at full
//! speed on the baseline MCD machine collecting the event trace, analyze it
//! here, then feed the emitted [`FrequencySchedule`] back into a second,
//! dynamic simulation run.

use mcd_pipeline::{
    simulate, DomainId, FrequencySchedule, InstrTrace, MachineConfig, PipelineConfig, RunResult,
};
use mcd_time::{DvfsModel, Femtos, Frequency, PllModel, VfTable};
use mcd_workload::BenchmarkProfile;
use serde::{Map, Serialize, Value};

use crate::cluster::{
    cluster_domain, emit_schedule, plan_stats, Cluster, ClusterConfig, DomainPlanStats,
};
use crate::dag::{build_interval_dags, IntervalDag, PowerFactors};
use crate::histogram::FreqHistogram;
use crate::shaker::{run_shaker_with, AnalysisScratch, ShakerConfig};

/// Off-line tool configuration.
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Analysis interval length, in base-frequency cycles (paper: 50 000).
    pub interval_cycles: u64,
    /// Target dilation θ (0.01 for dynamic-1 %, 0.05 for dynamic-5 %).
    pub dilation_target: f64,
    /// Per-domain de-rating of the dilation budget, compensating for
    /// structural (queue back-pressure, miss-serialization) effects the
    /// analytic model cannot see. Indexed by [`DomainId::index`]; the
    /// front-end entry is unused. The load/store factor is the tightest:
    /// slowing the L1/L2 pipeline serializes overlapped misses, which the
    /// DAG's slack structure cannot express (and the paper itself notes the
    /// load/store domain "must continue to operate at a high frequency in
    /// order to service the misses as quickly as possible").
    pub budget_safety: [f64; DomainId::COUNT],
    /// DVFS model the schedule is intended for.
    pub model: DvfsModel,
    /// Operating region.
    pub vf: VfTable,
    /// PLL re-lock model.
    pub pll: PllModel,
    /// Full-speed frequency of the trace run.
    pub base_frequency: Frequency,
    /// Shaker tuning.
    pub shaker: ShakerConfig,
    /// Per-domain relative power factors.
    pub power: PowerFactors,
    /// Scale the front end too (ablation; the paper never does).
    pub scale_front_end: bool,
    /// Add load/store events into the integer histogram so effective-address
    /// computation stays fast when memory activity is high (§3.2 footnote).
    pub couple_ls_into_int: bool,
}

impl OfflineConfig {
    /// The paper's configuration at a given dilation target and model.
    pub fn paper(dilation_target: f64, model: DvfsModel) -> Self {
        OfflineConfig {
            interval_cycles: 50_000,
            dilation_target,
            budget_safety: [1.0, 0.5, 0.7, 0.12],
            model,
            vf: VfTable::paper(),
            pll: PllModel::paper(),
            base_frequency: Frequency::GHZ,
            shaker: ShakerConfig::default(),
            power: PowerFactors::default(),
            scale_front_end: false,
            couple_ls_into_int: true,
        }
    }
}

/// Everything the analysis produces.
#[derive(Debug, Clone)]
pub struct AnalysisOutput {
    /// The reconfiguration log to replay in the dynamic run.
    pub schedule: FrequencySchedule,
    /// Per-domain cluster plans (front end stays empty).
    pub clusters: [Vec<Cluster>; DomainId::COUNT],
    /// Per-domain Figure-9 statistics.
    pub stats: [DomainPlanStats; DomainId::COUNT],
    /// End of the analyzed trace.
    pub trace_end: Femtos,
    /// Instructions analyzed.
    pub instructions: u64,
}

/// The θ-independent product of the expensive trace-analysis passes: one
/// slack histogram per domain per 50 K-cycle interval.
///
/// Deriving schedules for several dilation targets (the experiment driver
/// needs both θ = 1 % and θ = 5 %, each refined over multiple budget
/// iterations) only requires re-running the cheap clustering pass
/// ([`cluster_schedule`]) over this shared profile — the DAG construction
/// and shaker stretching, which dominate analysis time, run once.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlackProfile {
    /// Per-domain `(interval start, interval end, frequency histogram)`.
    pub per_domain: [Vec<(Femtos, Femtos, FreqHistogram)>; DomainId::COUNT],
    /// End of the analyzed trace.
    pub trace_end: Femtos,
    /// Instructions analyzed.
    pub instructions: u64,
    /// Whether the front end was included in the shake (ablation only).
    pub scale_front_end: bool,
}

/// Runs the θ-independent half of the analysis: trace → interval DAGs →
/// shaker → per-domain frequency histograms.
///
/// Only `interval_cycles`, `base_frequency`, `power`, `shaker`,
/// `scale_front_end` and `couple_ls_into_int` of `cfg` are consulted here;
/// the dilation target, budgets and DVFS model enter in
/// [`cluster_schedule`].
pub fn prepare_slack(
    trace: &[InstrTrace],
    pcfg: &PipelineConfig,
    cfg: &OfflineConfig,
) -> SlackProfile {
    prepare_slack_threads(trace, pcfg, cfg, 1)
}

/// Shakes one interval and folds the load/store histogram into the integer
/// one if configured.
fn shake_interval(
    dag: &mut IntervalDag,
    cfg: &OfflineConfig,
    scratch: &mut AnalysisScratch,
) -> [FreqHistogram; DomainId::COUNT] {
    let mut hists = run_shaker_with(dag, &cfg.shaker, cfg.base_frequency, scratch);
    if cfg.couple_ls_into_int {
        let ls = hists[DomainId::LoadStore.index()].clone();
        hists[DomainId::Integer.index()].merge(&ls);
    }
    hists
}

/// [`prepare_slack`] with an explicit analysis thread count.
///
/// Every interval's DAG is self-contained, so the shaker fan-out is a
/// deterministic map: intervals are partitioned into contiguous chunks, one
/// scoped thread per chunk, and the per-interval histograms are merged back
/// in interval order. The resulting [`SlackProfile`] is byte-identical for
/// any `threads` value. `1` is today's serial path (no threads spawned);
/// `0` means one thread per available core, matching the harness's worker
/// convention.
pub fn prepare_slack_threads(
    trace: &[InstrTrace],
    pcfg: &PipelineConfig,
    cfg: &OfflineConfig,
    threads: usize,
) -> SlackProfile {
    let interval_len =
        Femtos::from_femtos(cfg.interval_cycles * cfg.base_frequency.period().as_femtos());
    let trace_end = trace
        .iter()
        .map(|t| t.commit)
        .fold(Femtos::ZERO, Femtos::max);
    let mut dags = build_interval_dags(trace, pcfg, interval_len, cfg.power, cfg.scale_front_end);
    let n = dags.len();
    let threads = match threads {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        t => t,
    }
    .min(n.max(1));

    // Shake every interval; `shaken[k]` is interval k's histograms whether
    // the work ran serially or fanned out.
    let shaken: Vec<[FreqHistogram; DomainId::COUNT]> = if threads <= 1 {
        let mut scratch = AnalysisScratch::new();
        dags.iter_mut()
            .map(|dag| shake_interval(dag, cfg, &mut scratch))
            .collect()
    } else {
        let chunk = n.div_ceil(threads);
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = dags
                .chunks_mut(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut scratch = AnalysisScratch::new();
                        part.iter_mut()
                            .map(|dag| shake_interval(dag, cfg, &mut scratch))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // Joining in spawn order restores interval order exactly.
            for h in handles {
                out.extend(h.join().expect("analysis thread panicked"));
            }
        });
        out
    };

    let mut per_domain: [Vec<(Femtos, Femtos, FreqHistogram)>; DomainId::COUNT] =
        [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (dag, hists) in dags.iter().zip(&shaken) {
        for d in DomainId::ALL {
            per_domain[d.index()].push((dag.start, dag.end, hists[d.index()].clone()));
        }
    }
    SlackProfile {
        per_domain,
        trace_end,
        instructions: trace.len() as u64,
        scale_front_end: cfg.scale_front_end,
    }
}

/// Version tag of the slack-profile cache entries; bump when the analysis
/// or the [`SlackProfile`] wire format changes shape.
pub const SLACK_PROFILE_FORMAT: &str = "mcd-slack-profile/1";

/// Canonical key material identifying a [`SlackProfile`] for cross-process
/// caching: the benchmark, the traced machine (seed + pipeline config), and
/// exactly the [`OfflineConfig`] fields [`prepare_slack`] consults.
///
/// The dilation target, budget de-ratings and DVFS model deliberately do
/// *not* enter: they only affect [`cluster_schedule`], so θ = 1 % and
/// θ = 5 % cells (and every `refine_dynamic` budget iteration) share one
/// cache entry. The analysis thread count must never enter either — the
/// profile is byte-identical for any fan-out.
pub fn slack_cache_key_material(
    profile: &BenchmarkProfile,
    seed: u64,
    instructions: u64,
    pcfg: &PipelineConfig,
    cfg: &OfflineConfig,
) -> String {
    let mut offline = Map::new();
    offline.insert("interval_cycles".into(), cfg.interval_cycles.to_value());
    offline.insert("base_frequency".into(), cfg.base_frequency.to_value());
    offline.insert("power".into(), cfg.power.by_domain.to_value());
    offline.insert("shaker_max_scale".into(), cfg.shaker.max_scale.to_value());
    offline.insert("shaker_passes".into(), cfg.shaker.passes.to_value());
    offline.insert("scale_front_end".into(), cfg.scale_front_end.to_value());
    offline.insert(
        "couple_ls_into_int".into(),
        cfg.couple_ls_into_int.to_value(),
    );
    let mut root = Map::new();
    root.insert("format".into(), SLACK_PROFILE_FORMAT.to_value());
    root.insert("benchmark".into(), profile.to_value());
    root.insert("seed".into(), seed.to_value());
    root.insert("instructions".into(), instructions.to_value());
    root.insert("pipeline".into(), pcfg.to_value());
    root.insert("offline".into(), offline.to_value());
    serde_json::to_string(&Value::Object(root)).expect("key material serializes")
}

/// Runs the θ-dependent half of the analysis: clustering the slack
/// histograms into per-domain plans and emitting the reconfiguration
/// schedule for `cfg`'s dilation target, budgets and DVFS model.
pub fn cluster_schedule(slack: &SlackProfile, cfg: &OfflineConfig) -> AnalysisOutput {
    debug_assert_eq!(
        slack.scale_front_end, cfg.scale_front_end,
        "slack profile was prepared under a different front-end policy"
    );
    let per_domain = &slack.per_domain;
    let trace_end = slack.trace_end;
    let mut all_entries = Vec::new();
    let mut clusters: [Vec<Cluster>; DomainId::COUNT] =
        [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let scaled_domains = if cfg.scale_front_end {
        &DomainId::ALL[..]
    } else {
        &DomainId::ALL[1..]
    };
    for d in scaled_domains {
        let ccfg = ClusterConfig {
            dilation_target: cfg.dilation_target,
            budget_safety: cfg.budget_safety[d.index()],
            model: cfg.model,
            vf: cfg.vf,
            pll: cfg.pll,
        };
        let plan = cluster_domain(&per_domain[d.index()], &ccfg);
        all_entries.extend(emit_schedule(*d, &plan, &ccfg, cfg.base_frequency));
        clusters[d.index()] = plan;
    }
    let schedule = FrequencySchedule::from_entries(all_entries);
    let stats = DomainId::ALL.map(|d| plan_stats(d, &schedule, cfg.base_frequency, trace_end));
    AnalysisOutput {
        schedule,
        clusters,
        stats,
        trace_end,
        instructions: slack.instructions,
    }
}

/// Analyzes a collected trace and derives the reconfiguration schedule.
///
/// One-shot composition of [`prepare_slack`] and [`cluster_schedule`];
/// callers that need several dilation targets over the same trace should
/// call the two halves separately and reuse the [`SlackProfile`].
pub fn analyze(trace: &[InstrTrace], pcfg: &PipelineConfig, cfg: &OfflineConfig) -> AnalysisOutput {
    cluster_schedule(&prepare_slack(trace, pcfg, cfg), cfg)
}

/// Convenience wrapper: runs the full-speed traced simulation of
/// `profile` on the baseline MCD machine, analyzes it, and returns both the
/// analysis and the trace run's results.
pub fn derive_schedule(
    seed: u64,
    profile: &BenchmarkProfile,
    instructions: u64,
    cfg: &OfflineConfig,
) -> (AnalysisOutput, RunResult) {
    let mut machine = MachineConfig::baseline_mcd(seed);
    machine.collect_trace = true;
    let run = simulate(&machine, profile, instructions);
    let trace = run.trace.as_ref().expect("trace was requested");
    let analysis = analyze(trace, &machine.pipeline, cfg);
    (analysis, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_workload::suites;

    fn profile(name: &str) -> BenchmarkProfile {
        suites::by_name(name).expect("known benchmark")
    }

    #[test]
    fn art_schedule_scales_fp_domain() {
        // art alternates FP-busy and FP-idle phases; the tool must find FP
        // scaling opportunities (this is the mechanism behind Fig. 8).
        let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let (analysis, _) = derive_schedule(11, &profile("art"), 60_000, &cfg);
        let fp = &analysis.stats[DomainId::FloatingPoint.index()];
        assert!(
            fp.mean_frequency_hz < 0.95e9,
            "FP domain should scale below full speed: {:.3e}",
            fp.mean_frequency_hz
        );
    }

    #[test]
    fn integer_code_scales_fp_to_the_floor() {
        let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let (analysis, _) = derive_schedule(11, &profile("bzip2"), 40_000, &cfg);
        let fp = &analysis.stats[DomainId::FloatingPoint.index()];
        assert_eq!(fp.min_frequency, Frequency::MIN_SCALED);
        assert!(fp.mean_frequency_hz < 0.6e9, "{:.3e}", fp.mean_frequency_hz);
    }

    #[test]
    fn g721_keeps_integer_domain_fast() {
        // g721: balanced mix, high IPC — "the integer and load/store domains
        // must run near maximum speed in order to sustain this".
        let cfg = OfflineConfig::paper(0.01, DvfsModel::XScale);
        let (analysis, _) = derive_schedule(11, &profile("g721"), 40_000, &cfg);
        let int = &analysis.stats[DomainId::Integer.index()];
        assert!(
            int.mean_frequency_hz > 0.8e9,
            "integer domain should stay fast: {:.3e}",
            int.mean_frequency_hz
        );
    }

    #[test]
    fn tighter_dilation_target_means_higher_frequencies() {
        let cfg1 = OfflineConfig::paper(0.01, DvfsModel::XScale);
        let cfg5 = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let (a1, _) = derive_schedule(11, &profile("gcc"), 40_000, &cfg1);
        let (a5, _) = derive_schedule(11, &profile("gcc"), 40_000, &cfg5);
        let m1 = a1.stats[DomainId::Integer.index()].mean_frequency_hz;
        let m5 = a5.stats[DomainId::Integer.index()].mean_frequency_hz;
        assert!(
            m1 >= m5 - 1e6,
            "dynamic-1% ({m1:.3e}) should keep the integer domain at least as fast as dynamic-5% ({m5:.3e})"
        );
    }

    #[test]
    fn transmeta_schedules_fewer_reconfigurations() {
        let xs_cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let tm_cfg = OfflineConfig::paper(0.05, DvfsModel::Transmeta);
        let (xs, _) = derive_schedule(11, &profile("art"), 60_000, &xs_cfg);
        let (tm, _) = derive_schedule(11, &profile("art"), 60_000, &tm_cfg);
        let count = |a: &AnalysisOutput| a.schedule.len();
        assert!(
            count(&tm) <= count(&xs),
            "Transmeta ({}) should reconfigure no more than XScale ({})",
            count(&tm),
            count(&xs)
        );
    }

    #[test]
    fn front_end_is_never_scheduled() {
        let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let (analysis, _) = derive_schedule(11, &profile("mesa"), 40_000, &cfg);
        assert_eq!(
            analysis.schedule.counts_per_domain()[DomainId::FrontEnd.index()],
            0
        );
        let fe_mean = analysis.stats[DomainId::FrontEnd.index()].mean_frequency_hz;
        assert!((fe_mean - 1e9).abs() < 1e3, "front end mean {fe_mean}");
    }

    #[test]
    fn analysis_covers_the_whole_trace() {
        let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let (analysis, run) = derive_schedule(11, &profile("adpcm"), 20_000, &cfg);
        assert_eq!(analysis.instructions, 20_000);
        assert_eq!(analysis.trace_end, run.total_time);
        for d in &DomainId::ALL[1..] {
            let plan = &analysis.clusters[d.index()];
            assert!(!plan.is_empty());
            // Clusters tile the trace without gaps.
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}
