//! Property-based tests for the off-line analysis algorithms.

use proptest::prelude::*;

use mcd_offline::cluster::{cluster_domain, ClusterConfig};
use mcd_offline::FreqHistogram;
use mcd_time::{DvfsModel, Femtos, Frequency, FrequencyGrid, PllModel, VfTable};

fn histogram(masses: &[(u64, f64)]) -> FreqHistogram {
    let mut h = FreqHistogram::new(Frequency::GHZ);
    for (mhz, cycles) in masses {
        h.add(Frequency::from_mhz((*mhz).clamp(250, 1000)), *cycles);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dilation_is_monotone_decreasing_in_frequency(
        masses in proptest::collection::vec((250u64..1000, 1.0f64..1e6), 1..20),
        f1 in 250u64..1000,
        f2 in 250u64..1000,
    ) {
        let h = histogram(&masses);
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        let d_lo = h.dilation_at(Frequency::from_mhz(lo));
        let d_hi = h.dilation_at(Frequency::from_mhz(hi));
        prop_assert!(d_lo >= d_hi, "lower frequency must dilate at least as much");
        prop_assert_eq!(h.dilation_at(Frequency::GHZ), Femtos::ZERO);
    }

    #[test]
    fn chosen_frequency_always_meets_the_budget(
        masses in proptest::collection::vec((250u64..1000, 1.0f64..1e6), 1..20),
        budget_us in 0u64..200,
        steps in 2usize..64,
    ) {
        let h = histogram(&masses);
        let grid = FrequencyGrid::new(VfTable::paper(), steps);
        let budget = Femtos::from_micros(budget_us);
        let f = h.choose_frequency(&grid, budget);
        prop_assert!(
            h.dilation_at(f) <= budget || f == Frequency::GHZ,
            "chosen frequency {f} violates budget"
        );
        // Minimality: the next lower grid point (if any) must violate it.
        if let Some(lower) = grid.points().iter().rev().find(|p| p.frequency < f) {
            prop_assert!(h.dilation_at(lower.frequency) > budget);
        }
    }

    #[test]
    fn merge_is_mass_preserving(
        a in proptest::collection::vec((250u64..1000, 1.0f64..1e5), 1..10),
        b in proptest::collection::vec((250u64..1000, 1.0f64..1e5), 1..10),
    ) {
        let mut ha = histogram(&a);
        let hb = histogram(&b);
        let before = ha.total_cycles() + hb.total_cycles();
        ha.merge(&hb);
        prop_assert!((ha.total_cycles() - before).abs() < 1e-6 * before.max(1.0));
    }

    #[test]
    fn clusters_tile_the_timeline(
        masses in proptest::collection::vec(
            proptest::collection::vec((250u64..1000, 1.0f64..1e5), 0..5),
            1..12,
        ),
        model_is_xscale in any::<bool>(),
    ) {
        let model = if model_is_xscale { DvfsModel::XScale } else { DvfsModel::Transmeta };
        let cfg = ClusterConfig {
            dilation_target: 0.05,
            budget_safety: 1.0,
            model,
            vf: VfTable::paper(),
            pll: PllModel::paper(),
        };
        let intervals: Vec<_> = masses
            .iter()
            .enumerate()
            .map(|(i, m)| {
                (
                    Femtos::from_micros(i as u64 * 50),
                    Femtos::from_micros((i as u64 + 1) * 50),
                    histogram(m),
                )
            })
            .collect();
        let clusters = cluster_domain(&intervals, &cfg);
        prop_assert!(!clusters.is_empty());
        prop_assert_eq!(clusters[0].start, Femtos::ZERO);
        prop_assert_eq!(
            clusters.last().expect("non-empty").end,
            Femtos::from_micros(masses.len() as u64 * 50)
        );
        for pair in clusters.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start, "no gaps or overlaps");
        }
        for c in &clusters {
            prop_assert!(c.frequency >= Frequency::MIN_SCALED);
            prop_assert!(c.frequency <= Frequency::GHZ);
        }
    }
}
