//! Campaign-harness guarantees: worker-count-independent, serial-identical
//! results, and cache keys that respond to exactly the parameters that
//! matter.

use mcd::harness::{CacheKey, Campaign, CampaignSpec, CellSpec, ResultCache, Telemetry};
use mcd::time::DvfsModel;
use mcd::workload::suites;

use proptest::prelude::*;

fn scratch_cache(tag: &str) -> (ResultCache, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("mcd-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (ResultCache::open(&dir).expect("create cache"), dir)
}

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec!["adpcm".into(), "health".into(), "art".into()],
        seeds: vec![5],
        instructions: 2_500,
        models: vec![DvfsModel::XScale],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    }
}

#[test]
fn campaign_output_is_byte_identical_across_worker_counts_and_to_serial() {
    let spec = small_spec();

    // The serial reference: each cell run directly on this thread through
    // the same `run_benchmark` path the plain driver uses.
    let serial: Vec<_> = spec
        .expand()
        .expect("valid spec")
        .iter()
        .map(CellSpec::run)
        .collect();
    let serial_json = serde_json::to_string_pretty(&serial).expect("serializable");

    for workers in [1, 2, 8] {
        // A fresh cache per worker count so every cell is really computed
        // under that parallelism, not replayed from a previous loop turn.
        let (cache, dir) = scratch_cache(&format!("workers{workers}"));
        let report = Campaign::new(spec.clone())
            .workers(workers)
            .run(&cache, &Telemetry::disabled())
            .expect("valid spec");
        assert_eq!(report.computed(), 3, "workers = {workers}");
        assert_eq!(
            report.to_json().expect("all cells succeeded"),
            serial_json,
            "campaign with {workers} workers diverged from the serial driver"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn governed_campaign_is_byte_identical_across_worker_counts_and_to_serial() {
    // Same guarantee as above, with the on-line policy axis switched on:
    // governed rows are part of the cell result, so they must come out
    // byte-identical whether cells run serially or race on a pool.
    let mut spec = small_spec();
    spec.benchmarks = vec!["adpcm".into(), "art".into()];
    spec.policies = vec!["attack-decay".into(), "queue-pi:setpoint=0.6,kp=0.7".into()];

    let serial: Vec<_> = spec
        .expand()
        .expect("valid spec")
        .iter()
        .map(CellSpec::run)
        .collect();
    assert!(
        serial.iter().all(|r| r.online.len() == 2),
        "every governed cell carries one row per policy"
    );
    let serial_json = serde_json::to_string_pretty(&serial).expect("serializable");

    for workers in [1, 2, 8] {
        let (cache, dir) = scratch_cache(&format!("governed{workers}"));
        let report = Campaign::new(spec.clone())
            .workers(workers)
            .run(&cache, &Telemetry::disabled())
            .expect("valid spec");
        assert_eq!(report.computed(), 2, "workers = {workers}");
        assert_eq!(
            report.to_json().expect("all cells succeeded"),
            serial_json,
            "governed campaign with {workers} workers diverged from serial"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn unchanged_campaign_recomputes_nothing() {
    let (cache, dir) = scratch_cache("recompute");
    let campaign = Campaign::new(small_spec());
    let first = campaign
        .run(&cache, &Telemetry::disabled())
        .expect("valid spec");
    let second = campaign
        .run(&cache, &Telemetry::disabled())
        .expect("valid spec");
    assert_eq!(first.computed(), 3);
    assert_eq!(
        second.computed(),
        0,
        "every unchanged cell must come from the cache"
    );
    assert_eq!(second.cached(), 3);
    assert_eq!(first.to_json(), second.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

fn arb_cell() -> impl Strategy<Value = CellSpec> {
    (
        0usize..16,
        any::<u64>(),
        1_000u64..1_000_000,
        any::<bool>(),
        0.001f64..0.2,
    )
        .prop_map(|(bench, seed, instructions, xscale, theta)| CellSpec {
            benchmark: suites::names()[bench].to_string(),
            seed,
            instructions,
            model: if xscale {
                DvfsModel::XScale
            } else {
                DvfsModel::Transmeta
            },
            thetas: [theta, (theta * 5.0).min(0.99)],
            policies: Vec::new(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_key_is_stable_across_computations(cell in arb_cell()) {
        prop_assert_eq!(CacheKey::of(&cell), CacheKey::of(&cell));
    }

    #[test]
    fn cache_key_changes_with_seed(cell in arb_cell(), delta in 1u64..1_000) {
        let mut other = cell.clone();
        other.seed = cell.seed.wrapping_add(delta);
        prop_assert_ne!(CacheKey::of(&cell), CacheKey::of(&other));
    }

    #[test]
    fn cache_key_changes_with_instruction_window(cell in arb_cell(), delta in 1u64..1_000) {
        let mut other = cell.clone();
        other.instructions = cell.instructions + delta;
        prop_assert_ne!(CacheKey::of(&cell), CacheKey::of(&other));
    }

    #[test]
    fn cache_key_changes_with_theta(cell in arb_cell()) {
        let mut other = cell.clone();
        other.thetas[1] = (cell.thetas[1] * 0.5).max(0.0005);
        prop_assert_ne!(CacheKey::of(&cell), CacheKey::of(&other));
    }

    #[test]
    fn cache_key_changes_with_dvfs_model(cell in arb_cell()) {
        let mut other = cell.clone();
        other.model = match cell.model {
            DvfsModel::XScale => DvfsModel::Transmeta,
            DvfsModel::Transmeta => DvfsModel::XScale,
        };
        prop_assert_ne!(CacheKey::of(&cell), CacheKey::of(&other));
    }

    /// The key is a digest of *canonical* JSON: a spec deserialized from
    /// fields listed in any textual order hashes identically.
    #[test]
    fn cache_key_ignores_json_field_order(cell in arb_cell()) {
        let forward = format!(
            r#"{{"benchmark":{:?},"seed":{},"instructions":{},"model":{:?},"thetas":[{:?},{:?}]}}"#,
            cell.benchmark, cell.seed, cell.instructions,
            format!("{:?}", cell.model), cell.thetas[0], cell.thetas[1],
        );
        let reversed = format!(
            r#"{{"thetas":[{:?},{:?}],"model":{:?},"instructions":{},"seed":{},"benchmark":{:?}}}"#,
            cell.thetas[0], cell.thetas[1], format!("{:?}", cell.model),
            cell.instructions, cell.seed, cell.benchmark,
        );
        let a: CellSpec = serde_json::from_str(&forward).expect("forward order parses");
        let b: CellSpec = serde_json::from_str(&reversed).expect("reversed order parses");
        prop_assert_eq!(&a, &cell);
        prop_assert_eq!(&b, &cell);
        prop_assert_eq!(CacheKey::of(&a), CacheKey::of(&b));
    }
}

#[test]
fn slack_profiles_are_shared_across_dilation_targets_and_stay_byte_identical() {
    use mcd::harness::{CampaignRollup, ROLLUP_FILE};

    // Slack-profile cache keys are θ-independent, so a sweep at different
    // dilation targets has different cell cache keys (every cell
    // recomputes) but identical slack keys (every shaker pass is served
    // from the store).
    let base = small_spec(); // θ ∈ {1 %, 5 %}
    let mut alt = small_spec();
    alt.thetas = [0.02, 0.04];

    // Reference: the alt sweep against a fresh cache — cold slack store.
    let (cache_cold, dir_cold) = scratch_cache("slack-cold");
    let cold = Campaign::new(alt.clone())
        .run(&cache_cold, &Telemetry::disabled())
        .expect("valid spec");
    let cold_json = cold.to_json().expect("all cells finished");
    let cold_rollup = CampaignRollup::load(&cache_cold.dir().join(ROLLUP_FILE)).expect("rollup");
    assert_eq!(
        (cold_rollup.slack_hits, cold_rollup.slack_stores),
        (0, 3),
        "a cold store misses every lookup and keeps every profile"
    );

    // Warm: the base sweep seeds the store, then the alt sweep rides it
    // (under thread fan-out, to cover that axis too).
    let (cache_warm, dir_warm) = scratch_cache("slack-warm");
    Campaign::new(base)
        .run(&cache_warm, &Telemetry::disabled())
        .expect("valid spec");
    let warm = Campaign::new(alt)
        .workers(2)
        .analysis_threads(2)
        .run(&cache_warm, &Telemetry::disabled())
        .expect("valid spec");
    assert_eq!(warm.computed(), 3, "different θs are different cells");
    assert_eq!(
        warm.to_json().expect("all cells finished"),
        cold_json,
        "a warm slack store must not change result bytes"
    );
    let warm_rollup = CampaignRollup::load(&cache_warm.dir().join(ROLLUP_FILE)).expect("rollup");
    assert_eq!(
        (warm_rollup.slack_loads, warm_rollup.slack_hits),
        (3, 3),
        "every alt cell's slack profile came from the base sweep's store"
    );

    let _ = std::fs::remove_dir_all(&dir_cold);
    let _ = std::fs::remove_dir_all(&dir_warm);
}
