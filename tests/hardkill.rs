//! Hard-kill safety: a coordinator process SIGKILLed mid-campaign leaves
//! a checkpoint manifest at most `--checkpoint-every` completed cells
//! behind the result cache, and resuming from that manifest finishes the
//! campaign byte-identical to an uninterrupted serial run without
//! recomputing anything the cache already holds.
//!
//! The coordinator under test is the real `mcd-cli` binary (SIGKILL has
//! to land on a separate process — in-process kills can't bypass Drop
//! handlers the way a real `kill -9` does); the worker and the resume
//! phase run in-process.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use mcd::grid::{GridCampaign, GridWorker};
use mcd::harness::{Campaign, CampaignSpec, CheckpointManifest, ResultCache, Telemetry};
use mcd::time::DvfsModel;

const CHECKPOINT_EVERY: usize = 2;

fn spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec!["adpcm".into(), "mst".into(), "art".into()],
        seeds: vec![5, 7],
        instructions: 2_500,
        models: vec![DvfsModel::XScale],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    }
}

/// Kills the child on drop so a failing assertion never leaks a live
/// coordinator process.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Counts published result entries (64-hex `.json` files) in the cache
/// without opening a `ResultCache` handle — opening sweeps `.tmp` files,
/// which must not race the live coordinator's in-flight writes.
fn cache_entries(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_suffix(".json")
                .is_some_and(|stem| stem.len() == 64 && stem.bytes().all(|b| b.is_ascii_hexdigit()))
        })
        .count()
}

#[test]
fn sigkilled_coordinator_loses_at_most_checkpoint_every_cells() {
    let dir = std::env::temp_dir().join(format!("mcd-hardkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let cache_dir = dir.join("cache");
    let checkpoint = dir.join("checkpoint.json");

    // Serial reference on a private cache.
    let serial_cache = ResultCache::open(dir.join("serial")).expect("serial cache");
    let reference = Campaign::new(spec())
        .run(&serial_cache, &Telemetry::disabled())
        .expect("serial run")
        .to_json()
        .expect("serial completes");

    // Phase 1: the real binary serves the campaign; SIGKILL lands once
    // the cache holds a couple of results.
    let child = Command::new(env!("CARGO_BIN_EXE_mcd-cli"))
        .args([
            "grid",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--benchmarks",
            "adpcm,mst,art",
            "--seeds",
            "5,7",
            "--instructions",
            "2500",
            "--models",
            "xscale",
            "--checkpoint-every",
            &CHECKPOINT_EVERY.to_string(),
        ])
        .arg("--cache-dir")
        .arg(&cache_dir)
        .arg("--checkpoint")
        .arg(&checkpoint)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mcd-cli coordinator");
    let mut child = KillOnDrop(child);

    // The coordinator announces its bound port on stderr.
    let stderr = child.0.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("coordinator exited before announcing its port")
            .expect("read coordinator stderr");
        if let Some(addr) = line.strip_prefix("grid coordinator listening on ") {
            break addr.trim().to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    thread::spawn(move || for _ in lines {});

    let worker_addr = addr.clone();
    thread::spawn(move || {
        // The worker dies with a connection error when the coordinator is
        // killed; that is the expected outcome, not a test failure.
        let _ = GridWorker::connect(worker_addr)
            .name("doomed")
            .heartbeat_interval(Duration::from_millis(50))
            .run();
    });

    // SIGKILL once at least two results are published (and while later
    // cells are still in flight, campaign permitting).
    let deadline = Instant::now() + Duration::from_secs(60);
    while cache_entries(&cache_dir) < 2 {
        assert!(Instant::now() < deadline, "campaign never produced results");
        thread::sleep(Duration::from_millis(2));
    }
    child.0.kill().expect("SIGKILL coordinator");
    child.0.wait().expect("reap coordinator");

    // The hard-kill bound: the manifest lags the cache by at most
    // `--checkpoint-every` completed cells. The initial save happens
    // before any work, so the manifest always exists.
    let published = cache_entries(&cache_dir);
    let manifest = CheckpointManifest::load(&checkpoint).expect("manifest survives SIGKILL");
    let recorded = manifest.completed().len();
    assert!(
        published >= recorded,
        "manifest ({recorded}) cannot be ahead of the cache ({published})"
    );
    assert!(
        published - recorded <= CHECKPOINT_EVERY,
        "SIGKILL lost {} done-marks, bound is {CHECKPOINT_EVERY}",
        published - recorded
    );

    // Phase 2: resume in-process from the manifest alone.
    let server = GridCampaign::from_checkpoint(&checkpoint)
        .expect("resume from checkpoint")
        .checkpoint(&checkpoint)
        .checkpoint_every(CHECKPOINT_EVERY)
        .bind("127.0.0.1:0")
        .expect("bind resume");
    let resume_addr = server.local_addr().expect("local addr").to_string();
    let cache_dir_2: PathBuf = cache_dir.clone();
    let coordinator = thread::spawn(move || {
        let cache = ResultCache::open(&cache_dir_2).expect("reopen cache");
        server
            .run(&cache, &Telemetry::disabled())
            .expect("resumed campaign")
    });
    let worker = GridWorker::connect(resume_addr).name("reviver");
    let worker = thread::spawn(move || worker.run().expect("resume worker"));

    let resumed = coordinator.join().expect("resumed coordinator");
    worker.join().expect("resume worker thread");
    assert!(!resumed.interrupted);
    assert_eq!(
        resumed.to_json().expect("resume finishes every cell"),
        reference,
        "SIGKILL/resume changed the result bytes"
    );
    // Nothing the dead coordinator published is recomputed: the cache,
    // not the manifest, is the source of truth for result bytes.
    assert_eq!(
        resumed.computed(),
        resumed.cells.len() - published,
        "resume recomputed cells the cache already held"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
