//! Full-suite reproduction checks of the paper's headline claims.
//!
//! These run the complete five-configuration experiment over all sixteen
//! benchmarks and are therefore expensive (~minutes in release mode); they
//! are `#[ignore]`d by default and run explicitly with
//! `cargo test --release --test paper_claims -- --ignored`.

use mcd::core::{run_benchmark, ExperimentConfig};
use mcd::time::DvfsModel;
use mcd::workload::suites;

fn averages(n: u64) -> ([f64; 4], [f64; 4], [f64; 4]) {
    let cfg = ExperimentConfig::paper(5, n, DvfsModel::XScale);
    let mut perf = [0.0; 4];
    let mut energy = [0.0; 4];
    let mut ed = [0.0; 4];
    let profiles = suites::all();
    for profile in &profiles {
        let r = run_benchmark(profile, &cfg);
        for i in 0..4 {
            perf[i] += r.perf_degradation()[i];
            energy[i] += r.energy_savings()[i];
            ed[i] += r.energy_delay_improvement()[i];
        }
    }
    let count = profiles.len() as f64;
    (
        perf.map(|v| v / count),
        energy.map(|v| v / count),
        ed.map(|v| v / count),
    )
}

#[test]
#[ignore = "runs the full 16-benchmark suite (~minutes); run with -- --ignored"]
fn headline_claims_reproduce_in_shape() {
    let (perf, energy, ed) = averages(120_000);

    // Baseline MCD: small cost in both time and energy (paper: <4%, ~1.5%).
    assert!(
        perf[0] > 0.0 && perf[0] < 0.08,
        "MCD perf cost {:.3}",
        perf[0]
    );
    assert!(
        energy[0] < 0.0 && energy[0] > -0.05,
        "MCD energy cost {:.3}",
        energy[0]
    );

    // Dynamic-5%: degradation roughly tracking θ above the MCD baseline
    // (paper: ~10%), with positive energy savings well above global's V²
    // share of the same slowdown.
    assert!(
        perf[2] > 0.05 && perf[2] < 0.16,
        "dyn-5% degradation {:.3}",
        perf[2]
    );
    assert!(energy[2] > 0.10, "dyn-5% energy {:.3}", energy[2]);

    // Monotonicity in θ.
    assert!(perf[2] > perf[1], "5% degrades more than 1%");
    assert!(energy[2] > energy[1], "5% saves more than 1%");

    // The paper's headline ordering on energy-delay:
    // dynamic-5% > dynamic-1% > 0, and dynamic-5% beats global scaling.
    assert!(ed[1] > 0.0, "dyn-1% ED {:.3}", ed[1]);
    assert!(
        ed[2] > ed[1],
        "dyn-5% ({:.3}) > dyn-1% ({:.3})",
        ed[2],
        ed[1]
    );
    assert!(
        ed[2] > ed[3],
        "dyn-5% ({:.3}) > global ({:.3})",
        ed[2],
        ed[3]
    );

    // Global matches the dynamic-5% degradation by construction.
    assert!(
        (perf[3] - perf[2]).abs() < 0.04,
        "global {:.3} vs dyn-5% {:.3}",
        perf[3],
        perf[2]
    );
}
