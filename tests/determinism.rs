//! Reproducibility guarantees the paper's two-phase methodology relies on.

use mcd::offline::{derive_schedule, OfflineConfig};
use mcd::pipeline::{simulate, FrequencySchedule, MachineConfig};
use mcd::time::DvfsModel;
use mcd::workload::{suites, WorkloadGenerator};

#[test]
fn whole_toolchain_is_deterministic() {
    let profile = suites::by_name("art").expect("known benchmark");
    let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
    let (a1, r1) = derive_schedule(9, &profile, 15_000, &cfg);
    let (a2, r2) = derive_schedule(9, &profile, 15_000, &cfg);
    assert_eq!(r1.total_time, r2.total_time);
    assert_eq!(a1.schedule, a2.schedule);

    let m = MachineConfig::dynamic(9, DvfsModel::XScale, a1.schedule);
    let d1 = simulate(&m, &profile, 15_000);
    let d2 = simulate(&m, &profile, 15_000);
    assert_eq!(d1.total_time, d2.total_time);
    assert_eq!(d1.ledger, d2.ledger);
}

#[test]
fn trace_and_dynamic_runs_execute_the_same_program() {
    // Same seed ⇒ the workload generator replays the identical instruction
    // stream for both the analysis run and the dynamic run.
    let profile = suites::by_name("parser").expect("known benchmark");
    let mut a = WorkloadGenerator::new(profile.clone(), 42);
    let mut b = WorkloadGenerator::new(profile, 42);
    for _ in 0..50_000 {
        assert_eq!(a.next_instruction(), b.next_instruction());
    }
}

#[test]
fn schedules_round_trip_through_json() {
    let profile = suites::by_name("em3d").expect("known benchmark");
    let cfg = OfflineConfig::paper(0.05, DvfsModel::Transmeta);
    let (analysis, _) = derive_schedule(3, &profile, 15_000, &cfg);
    let json = analysis.schedule.to_json().expect("serializable");
    let back = FrequencySchedule::from_json(&json).expect("parses");
    assert_eq!(analysis.schedule, back);

    // And the round-tripped schedule drives the simulator identically.
    let m1 = MachineConfig::dynamic(3, DvfsModel::Transmeta, analysis.schedule);
    let m2 = MachineConfig::dynamic(3, DvfsModel::Transmeta, back);
    let r1 = simulate(&m1, &suites::by_name("em3d").expect("known"), 10_000);
    let r2 = simulate(&m2, &suites::by_name("em3d").expect("known"), 10_000);
    assert_eq!(r1.total_time, r2.total_time);
}

#[test]
fn different_seeds_give_statistically_similar_but_distinct_runs() {
    let profile = suites::by_name("g721").expect("known benchmark");
    let a = simulate(&MachineConfig::baseline(1), &profile, 20_000);
    let b = simulate(&MachineConfig::baseline(2), &profile, 20_000);
    assert_ne!(a.total_time, b.total_time);
    let rel = (a.ipc() - b.ipc()).abs() / a.ipc();
    assert!(
        rel < 0.15,
        "seeds should not change IPC by {:.1}%",
        rel * 100.0
    );
}

#[test]
fn slack_profile_and_schedule_are_byte_identical_across_analysis_threads() {
    use mcd::offline::{cluster_schedule, prepare_slack_threads};
    use mcd::time::DvfsModel;

    let profile = suites::by_name("gcc").expect("known benchmark");
    let mut machine = MachineConfig::baseline_mcd(7);
    machine.collect_trace = true;
    let run = simulate(&machine, &profile, 25_000);
    let trace = run.trace.as_ref().expect("trace was requested");
    let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);

    let serial = prepare_slack_threads(trace, &machine.pipeline, &cfg, 1);
    let serial_json = serde_json::to_string(&serial).expect("serializable");
    let serial_schedule = cluster_schedule(&serial, &cfg).schedule;
    let serial_run = simulate(
        &MachineConfig::dynamic(7, DvfsModel::XScale, serial_schedule.clone()),
        &profile,
        25_000,
    );
    let serial_run_json = serde_json::to_string(&serial_run).expect("serializable");

    for threads in [2usize, 8, 0] {
        let fanned = prepare_slack_threads(trace, &machine.pipeline, &cfg, threads);
        assert_eq!(
            serde_json::to_string(&fanned).expect("serializable"),
            serial_json,
            "SlackProfile differs at {threads} analysis threads"
        );
        let schedule = cluster_schedule(&fanned, &cfg).schedule;
        assert_eq!(
            schedule, serial_schedule,
            "schedule differs at {threads} analysis threads"
        );
        let dynamic = simulate(
            &MachineConfig::dynamic(7, DvfsModel::XScale, schedule),
            &profile,
            25_000,
        );
        assert_eq!(
            serde_json::to_string(&dynamic).expect("serializable"),
            serial_run_json,
            "downstream dynamic run differs at {threads} analysis threads"
        );
    }
}
