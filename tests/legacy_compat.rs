//! Results-neutrality pins for the scenario/policy refactor.
//!
//! The fixtures under `tests/fixtures/` were produced by the
//! pre-`ScenarioSpec` implementation (closed `CellConfig` enum, no policy
//! axis, `mcd-cell-key/1`-era cache material). These tests pin the current
//! code to those bytes: policy-free cells must keep their cache keys, spec
//! digests, result documents, and cached campaign artifacts exactly as
//! they were, no matter how the control-policy layer evolves.

use std::path::{Path, PathBuf};

use mcd::core::BenchmarkResults;
use mcd::harness::{
    spec_digest, CacheKey, Campaign, CampaignRollup, CampaignSpec, CellSpec, ResultCache,
    Telemetry, ROLLUP_FILE, ROLLUP_SCHEMA,
};
use mcd::time::DvfsModel;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn legacy_cell() -> CellSpec {
    CellSpec {
        benchmark: "adpcm".into(),
        seed: 5,
        instructions: 2_500,
        model: DvfsModel::XScale,
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    }
}

#[test]
fn policy_free_cache_keys_are_pinned_to_their_pre_refactor_bytes() {
    // Hexes recorded from the pre-refactor implementation. If either
    // changes, every existing result cache is silently invalidated — treat
    // a failure here as a results-neutrality break, not a fixture update.
    assert_eq!(
        CacheKey::of(&legacy_cell()).hex(),
        "40517be1820291f278e8b8d1825b01900f82fc4589b298399b80b2276b657e7f"
    );
    let other = CellSpec {
        benchmark: "gcc".into(),
        seed: 7,
        instructions: 4_000,
        model: DvfsModel::Transmeta,
        thetas: [0.02, 0.04],
        policies: Vec::new(),
    };
    assert_eq!(
        CacheKey::of(&other).hex(),
        "0ef0d362882f64ae775c6f7d9f9b760719831971df3a426244d5279978944d97"
    );
}

#[test]
fn policy_free_spec_digests_are_pinned() {
    let spec = CampaignSpec {
        benchmarks: vec!["adpcm".into(), "mst".into()],
        seeds: vec![5],
        instructions: 5_000,
        models: vec![DvfsModel::XScale],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    };
    // Pre-refactor digest: checkpoints written before the policy axis
    // existed must still match their campaigns.
    assert_eq!(
        spec_digest(&spec),
        "56039c676e49f7544e1f57aa3e3614c2f8032ba19558932f8a86984849b46fb4"
    );
}

#[test]
fn legacy_results_match_a_fresh_run_byte_for_byte() {
    let raw = std::fs::read_to_string(fixtures().join("legacy_benchmark_results.json"))
        .expect("fixture present");
    let fixture: serde_json::Value = serde_json::from_str(&raw).expect("fixture parses");

    // A fresh run of the same cell through the refactored scenario driver.
    let run = legacy_cell().run();
    let run_json = serde_json::to_string_pretty(&run).expect("serializable");
    let run_value: serde_json::Value = serde_json::from_str(&run_json).expect("round-trips");
    assert_eq!(
        run_value, fixture,
        "policy-free results drifted from the pre-refactor bytes"
    );

    // And the document round-trips through the typed deserializer without
    // gaining or losing fields (in particular, no `online` key appears).
    let typed: BenchmarkResults = serde_json::from_str(&raw).expect("legacy document parses");
    assert!(typed.online.is_empty());
    let reserialized = serde_json::to_string_pretty(&typed).expect("serializable");
    assert_eq!(reserialized, run_json);
}

#[test]
fn legacy_cache_replays_with_zero_recomputes() {
    // Copy the pre-refactor cache into a scratch dir (the harness may write
    // rollups/probe files into it) and replay the campaign it was built by.
    let src = fixtures().join("legacy_cache");
    let dir = std::env::temp_dir().join(format!("mcd-legacy-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(&src, &dir);

    let spec = CampaignSpec {
        benchmarks: vec!["adpcm".into(), "mst".into()],
        seeds: vec![5],
        instructions: 2_500,
        models: vec![DvfsModel::XScale],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    };
    let cache = ResultCache::open(&dir).expect("open copied cache");
    let report = Campaign::new(spec)
        .run(&cache, &Telemetry::disabled())
        .expect("valid spec");
    assert_eq!(
        report.cached(),
        2,
        "both pre-refactor entries must be cache hits"
    );
    assert_eq!(report.computed(), 0, "nothing may be recomputed");

    // The replay regenerates the (derived) rollup under the current schema.
    let rollup = CampaignRollup::load(&dir.join(ROLLUP_FILE)).expect("fresh rollup loads");
    assert_eq!(rollup.schema, ROLLUP_SCHEMA);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn outdated_rollup_schemas_are_rejected_not_misread() {
    // The rollup is derived data, so unlike cells it is versioned strictly:
    // the fixture was written at mcd-campaign-rollup/4 (no per-policy
    // breakdown) and must be refused, not half-parsed.
    let err = CampaignRollup::load(&fixtures().join("legacy_cache").join(ROLLUP_FILE))
        .expect_err("old schema must not load");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create scratch dir");
    for entry in std::fs::read_dir(src).expect("fixture dir readable") {
        let entry = entry.expect("fixture entry readable");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy fixture file");
        }
    }
}
