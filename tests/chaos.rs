//! Chaos suite: deterministic fault injection against the campaign
//! harness, asserting the recovery guarantees the harness advertises.
//!
//! Every test here follows the same shape: a fixed [`FaultPlan`] breaks
//! the machinery around the simulator (a cell panics, a worker hangs, a
//! cache write tears, the campaign is interrupted), and the assertion is
//! always the determinism invariant — after recovery (retry, quarantine,
//! resume), the campaign's result bytes are identical to an uninterrupted
//! serial run. Faults are seeded and explicit, never random at run time,
//! so a failure here reproduces on the first rerun.

use std::time::Duration;

use mcd::harness::telemetry::replay;
use mcd::harness::{
    BackoffPolicy, CacheKey, CacheProbe, Campaign, CampaignSpec, CellOutcome, CellSpec,
    CheckpointManifest, Fault, FaultPlan, ResultCache, RetryPolicy, SlackDiskCache, Telemetry,
    SLACK_CACHE_DIR,
};
use mcd::time::DvfsModel;

use proptest::prelude::*;
use serde_json::Value;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mcd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec!["adpcm".into(), "mst".into(), "art".into()],
        seeds: vec![5],
        instructions: 2_500,
        models: vec![DvfsModel::XScale],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    }
}

/// The uninterrupted serial reference: every cell run directly on this
/// thread, bytes frozen. Chaos runs must converge to exactly this.
fn serial_json(spec: &CampaignSpec) -> String {
    let results: Vec<_> = spec
        .expand()
        .expect("valid spec")
        .iter()
        .map(CellSpec::run)
        .collect();
    serde_json::to_string_pretty(&results).expect("serializable")
}

/// Events with a given tag from a telemetry log.
fn events_named(path: &std::path::Path, name: &str) -> Vec<Value> {
    let (events, tail) = replay(path).expect("telemetry log parses");
    assert!(tail.is_none(), "no torn tail in a cleanly closed log");
    events
        .into_iter()
        .filter(|e| e.get("event").and_then(Value::as_str) == Some(name))
        .collect()
}

#[test]
fn deterministic_panic_fails_one_cell_and_resume_is_byte_identical() {
    let dir = scratch("panic-resume");
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let ckpt = dir.join("campaign.checkpoint.json");
    let spec = small_spec();
    let reference = serial_json(&spec);

    // Cell 1 panics identically on every attempt: a deterministic bug.
    let report = Campaign::new(spec.clone())
        .workers(2)
        .retry(RetryPolicy::attempts(5))
        .chaos(FaultPlan::new(vec![Fault::Panic {
            cell: 1,
            attempts: u32::MAX,
        }]))
        .checkpoint(&ckpt)
        .run(&cache, &Telemetry::disabled())
        .expect("campaign runs");
    assert_eq!(report.failed(), 1, "only the injected cell fails");
    assert_eq!(report.computed(), 2, "siblings are unaffected");
    assert!(
        report.to_json().is_none(),
        "no result document with a failed cell"
    );
    let CellOutcome::Failed(failure) = &report.cells[1].outcome else {
        panic!("cell 1 must carry the failure");
    };
    assert!(
        failure.deterministic,
        "identical payloads are classified deterministic"
    );
    assert_eq!(
        failure.attempts, 2,
        "fail-fast: the 5-attempt budget is not burned"
    );

    let manifest = CheckpointManifest::load(&ckpt).expect("manifest written");
    assert_eq!(manifest.pending(), 1, "exactly the failed cell is pending");
    assert!(manifest.completed().contains(&0) && manifest.completed().contains(&2));

    // Resume with the fault gone (the bug fixed): byte-identical to the
    // serial run that never saw a panic.
    let resumed = Campaign::from_checkpoint(&ckpt)
        .expect("manifest round-trips")
        .run(&cache, &Telemetry::disabled())
        .expect("resume runs");
    assert_eq!(resumed.cached(), 2);
    assert_eq!(resumed.computed(), 1);
    assert_eq!(resumed.to_json().as_deref(), Some(reference.as_str()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_interrupt_drains_checkpoints_and_resume_is_byte_identical() {
    let dir = scratch("interrupt-resume");
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let ckpt = dir.join("campaign.checkpoint.json");
    let telemetry_log = dir.join("telemetry.jsonl");
    let spec = small_spec();
    let reference = serial_json(&spec);

    // One worker, interrupt after the first computed cell: the same stop
    // flag a SIGINT raises, minus the signal.
    let report = Campaign::new(spec.clone())
        .workers(1)
        .chaos(FaultPlan::new(vec![Fault::InterruptAfter { computed: 1 }]))
        .checkpoint(&ckpt)
        .run(&cache, &Telemetry::to_file(&telemetry_log).unwrap())
        .expect("campaign drains");
    assert!(report.interrupted);
    assert_eq!(
        report.computed(),
        1,
        "the in-flight cell finished (drain, not abort)"
    );
    assert_eq!(report.skipped(), 2, "unclaimed cells were skipped");
    assert!(report.to_json().is_none());
    let interrupted = events_named(&telemetry_log, "campaign_interrupted");
    assert_eq!(
        interrupted.len(),
        1,
        "the interruption is a structured event"
    );

    let manifest = CheckpointManifest::load(&ckpt).expect("manifest survives the interrupt");
    assert_eq!(manifest.completed().len(), 1);
    assert_eq!(manifest.pending(), 2);

    // Resume from the manifest alone: the remainder computes, the finished
    // cell replays from cache, and the bytes match the uninterrupted run.
    let resumed = Campaign::from_checkpoint(&ckpt)
        .expect("manifest round-trips")
        .workers(2)
        .run(&cache, &Telemetry::disabled())
        .expect("resume runs");
    assert!(!resumed.interrupted);
    assert_eq!(resumed.cached(), 1);
    assert_eq!(resumed.computed(), 2);
    assert_eq!(resumed.to_json().as_deref(), Some(reference.as_str()));
    let complete = CheckpointManifest::load(&ckpt).unwrap();
    assert!(complete.is_complete());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_cache_write_is_quarantined_recomputed_and_reported() {
    let dir = scratch("torn-store");
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let telemetry_log = dir.join("telemetry.jsonl");
    let spec = small_spec();
    let reference = serial_json(&spec);
    let keys: Vec<CacheKey> = spec.expand().unwrap().iter().map(CacheKey::of).collect();

    // Run 1: cell 0's store crashes mid-flush, publishing a torn entry.
    // The in-memory result is still good, so this run's bytes are fine.
    let first = Campaign::new(spec.clone())
        .chaos(FaultPlan::new(vec![Fault::TornStore { cell: 0, keep: 40 }]))
        .run(&cache, &Telemetry::disabled())
        .expect("campaign runs");
    assert_eq!(first.to_json().as_deref(), Some(reference.as_str()));
    assert!(
        matches!(cache.probe(&keys[0]), CacheProbe::Corrupt(_)),
        "the torn entry is on disk and detectably corrupt"
    );

    // Run 2: the probe detects the corruption, quarantines the evidence,
    // recomputes, and reports the event — and never serves the bad entry.
    let second = Campaign::new(spec.clone())
        .run(&cache, &Telemetry::to_file(&telemetry_log).unwrap())
        .expect("campaign runs");
    assert_eq!(second.computed(), 1, "exactly the torn cell recomputes");
    assert_eq!(second.cached(), 2);
    assert_eq!(second.to_json().as_deref(), Some(reference.as_str()));

    let quarantined = events_named(&telemetry_log, "cache_quarantined");
    assert_eq!(quarantined.len(), 1);
    assert_eq!(
        quarantined[0].get("kind").and_then(Value::as_str),
        Some("malformed")
    );
    assert_eq!(
        quarantined[0].get("key").and_then(Value::as_str),
        Some(keys[0].hex())
    );
    assert!(
        cache
            .quarantine_dir()
            .join(format!("{}.json", keys[0].hex()))
            .is_file(),
        "the torn bytes are preserved as evidence"
    );
    assert!(
        matches!(cache.probe(&keys[0]), CacheProbe::Hit(_)),
        "the slot now holds an honest entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_worker_is_abandoned_and_resume_is_byte_identical() {
    let dir = scratch("stall-resume");
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let ckpt = dir.join("campaign.checkpoint.json");
    let telemetry_log = dir.join("telemetry.jsonl");
    // Short cells (tens of ms) so the 1 s watchdog deadline is far above
    // honest compute time and far below the 4 s injected hang.
    let mut spec = small_spec();
    spec.instructions = 600;
    let reference = serial_json(&spec);

    let report = Campaign::new(spec.clone())
        .workers(2)
        .deadline(Duration::from_secs(1))
        .chaos(FaultPlan::new(vec![Fault::Stall {
            cell: 2,
            by: Duration::from_secs(4),
        }]))
        .checkpoint(&ckpt)
        .run(&cache, &Telemetry::to_file(&telemetry_log).unwrap())
        .expect("campaign runs");
    assert_eq!(
        report.stalled(),
        1,
        "the hung cell is abandoned, not awaited"
    );
    assert_eq!(report.computed(), 2, "the pool survives a hung worker");
    assert!(matches!(
        report.cells[2].outcome,
        CellOutcome::Stalled { waited } if waited >= Duration::from_secs(1)
    ));
    assert!(
        report.wall < Duration::from_secs(4),
        "the campaign did not wait out the hang (wall {:?})",
        report.wall
    );
    assert_eq!(events_named(&telemetry_log, "cell_stalled").len(), 1);

    // Resume without the hang: only the stalled cell recomputes, and the
    // bytes match the run that never hung.
    let resumed = Campaign::from_checkpoint(&ckpt)
        .expect("manifest round-trips")
        .run(&cache, &Telemetry::disabled())
        .expect("resume runs");
    assert_eq!(resumed.cached(), 2);
    assert_eq!(resumed.computed(), 1);
    assert_eq!(resumed.to_json().as_deref(), Some(reference.as_str()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_store_errors_recover_with_backoff_and_are_reported() {
    let dir = scratch("store-backoff");
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let telemetry_log = dir.join("telemetry.jsonl");
    let spec = small_spec();
    let reference = serial_json(&spec);
    let keys: Vec<CacheKey> = spec.expand().unwrap().iter().map(CacheKey::of).collect();

    let report = Campaign::new(spec.clone())
        .backoff(BackoffPolicy {
            base: Duration::from_millis(1),
            ..BackoffPolicy::default()
        })
        .chaos(FaultPlan::new(vec![Fault::StoreIoError {
            cell: 1,
            times: 2,
        }]))
        .run(&cache, &Telemetry::to_file(&telemetry_log).unwrap())
        .expect("campaign runs");
    assert_eq!(report.computed(), 3);
    assert_eq!(report.to_json().as_deref(), Some(reference.as_str()));

    let retries = events_named(&telemetry_log, "io_retry");
    assert_eq!(
        retries.len(),
        2,
        "both injected failures are visible in telemetry"
    );
    for event in &retries {
        assert_eq!(event.get("op").and_then(Value::as_str), Some("store"));
        assert_eq!(
            event
                .get("cell")
                .and_then(Value::as_number)
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
    assert!(
        matches!(cache.probe(&keys[1]), CacheProbe::Hit(_)),
        "the third store attempt published a valid entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_fault_storm_still_converges_to_serial_bytes() {
    let dir = scratch("storm");
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let mut spec = small_spec();
    spec.seeds = vec![5, 6]; // 6 cells: a denser target for the storm
    let reference = serial_json(&spec);
    let cells = spec.expand().unwrap().len();

    // A mixed plan of transient faults derived from a fixed seed. Same
    // seed, same storm — this test's failures reproduce exactly.
    let storm = FaultPlan::storm(42, cells);
    assert!(
        !storm.is_empty(),
        "the storm must actually inject something"
    );
    let report = Campaign::new(spec.clone())
        .workers(3)
        .backoff(BackoffPolicy {
            base: Duration::from_millis(1),
            ..BackoffPolicy::default()
        })
        .chaos(storm)
        .run(&cache, &Telemetry::disabled())
        .expect("campaign survives the storm");
    assert_eq!(report.computed(), cells, "every cell recovers");
    assert_eq!(report.to_json().as_deref(), Some(reference.as_str()));

    // A second, fault-free run heals whatever the storm left in the cache
    // (torn entries quarantine and recompute) and reproduces the bytes.
    let second = Campaign::new(spec.clone())
        .run(&cache, &Telemetry::disabled())
        .expect("clean rerun");
    assert_eq!(second.to_json().as_deref(), Some(reference.as_str()));
    assert_eq!(second.failed(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_write_failures_never_change_result_bytes() {
    let dir = scratch("telemetry-fail");
    let cache = ResultCache::open(dir.join("cache")).unwrap();
    let spec = small_spec();
    let reference = serial_json(&spec);

    // A sink that dies after three writes: the campaign must not notice.
    let failing = Telemetry::to_writer(Box::new(mcd::harness::chaos::FailingWriter::after(3)));
    let report = Campaign::new(spec.clone())
        .run(&cache, &failing)
        .expect("campaign runs");
    assert_eq!(report.failed(), 0);
    assert_eq!(report.to_json().as_deref(), Some(reference.as_str()));
    let _ = std::fs::remove_dir_all(&dir);
}

fn one_cell_spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec!["adpcm".into()],
        seeds: vec![5],
        instructions: 2_500,
        models: vec![DvfsModel::XScale],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever bytes end up in a cache entry — truncations, bit flips,
    /// arbitrary garbage — the harness detects the damage, quarantines the
    /// entry, recomputes, and reproduces the honest bytes. The only
    /// exception is damage that restores the original bytes exactly, which
    /// is not damage.
    #[test]
    fn arbitrary_cache_corruption_is_always_detected_and_recovered(
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
        truncate in any::<bool>(),
    ) {
        let dir = scratch("prop-corrupt");
        let cache = ResultCache::open(dir.join("cache")).unwrap();
        let spec = one_cell_spec();
        let key = CacheKey::of(&spec.expand().unwrap()[0]);
        let reference = serial_json(&spec);

        // Seed an honest entry, then damage it.
        Campaign::new(spec.clone())
            .run(&cache, &Telemetry::disabled())
            .expect("seed run");
        let honest = cache.raw_entry(&key).expect("entry on disk");
        let damaged: Vec<u8> = if truncate {
            honest[..garbage.len().min(honest.len().saturating_sub(1))].to_vec()
        } else {
            garbage.clone()
        };
        // Damage that reproduces the original bytes is not damage; skip
        // that (vanishingly rare) sample.
        if damaged != honest {
            cache.corrupt_with(&key, &damaged).unwrap();

            match cache.probe(&key) {
                CacheProbe::Corrupt(_) => {}
                CacheProbe::Hit(_) => prop_assert!(false, "damaged entry served as a hit"),
                CacheProbe::Miss => prop_assert!(false, "damaged entry reported as a miss"),
            }

            let recovered = Campaign::new(spec.clone())
                .run(&cache, &Telemetry::disabled())
                .expect("recovery run");
            prop_assert_eq!(recovered.computed(), 1, "damage always forces recomputation");
            prop_assert_eq!(recovered.to_json().as_deref(), Some(reference.as_str()));
            prop_assert!(
                cache.quarantine_dir().join(format!("{}.json", key.hex())).is_file(),
                "the damaged bytes are preserved in quarantine"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `cache scrub` semantics under arbitrary damage: verify (read-only)
    /// and scrub (quarantining) both report exactly the corrupted keys,
    /// quarantine preserves the evidence bytes, intact entries keep
    /// serving, and a second scrub finds nothing. Slack profiles get the
    /// same treatment from their own scrubber.
    #[test]
    fn cache_scrub_finds_and_quarantines_every_corruption(
        corrupt_mask in proptest::collection::vec(any::<bool>(), 3),
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let dir = scratch("prop-scrub");
        let cache = ResultCache::open(dir.join("cache")).unwrap();
        let spec = small_spec(); // 3 cells -> 3 cache entries
        Campaign::new(spec.clone())
            .run(&cache, &Telemetry::disabled())
            .expect("seed run");
        let keys: Vec<CacheKey> = spec.expand().unwrap().iter().map(CacheKey::of).collect();

        let mut expected: Vec<String> = Vec::new();
        for (key, corrupt) in keys.iter().zip(&corrupt_mask) {
            let honest = cache.raw_entry(key).expect("entry on disk");
            // Damage that reproduces the original bytes is not damage.
            if *corrupt && garbage != honest {
                cache.corrupt_with(key, &garbage).unwrap();
                expected.push(key.hex().to_string());
            }
        }
        expected.sort();

        let verify = cache.scrub(false).expect("verify");
        prop_assert_eq!(verify.checked, keys.len());
        let mut found: Vec<String> = verify.findings.iter().map(|f| f.key.clone()).collect();
        found.sort();
        prop_assert_eq!(&found, &expected, "verify misreported the damage");
        prop_assert!(verify.findings.iter().all(|f| f.evidence.is_none()));

        let scrub = cache.scrub(true).expect("scrub");
        let mut found: Vec<String> = scrub.findings.iter().map(|f| f.key.clone()).collect();
        found.sort();
        prop_assert_eq!(&found, &expected, "scrub misreported the damage");
        for f in &scrub.findings {
            prop_assert!(
                f.evidence.as_ref().expect("quarantine evidence").is_file(),
                "quarantined bytes preserved"
            );
        }
        prop_assert!(cache.scrub(true).expect("rescrub").clean(), "scrub is idempotent");
        for key in &keys {
            let hit = matches!(cache.probe(key), CacheProbe::Hit(_));
            prop_assert_eq!(
                hit,
                !expected.contains(&key.hex().to_string()),
                "exactly the intact entries keep serving"
            );
        }

        // The slack store scrubs with the same contract: corrupt one
        // stored profile and it is the one finding, quarantined as
        // evidence, with the rest untouched.
        let slack = SlackDiskCache::open(cache.dir().join(SLACK_CACHE_DIR)).unwrap();
        let mut profiles: Vec<std::path::PathBuf> = std::fs::read_dir(slack.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == "json")
                    && p.file_stem().is_some_and(|s| s.len() == 64)
            })
            .collect();
        profiles.sort();
        prop_assert!(!profiles.is_empty(), "the seed run stored slack profiles");
        let victim = &profiles[0];
        let honest = std::fs::read(victim).unwrap();
        if garbage != honest {
            std::fs::write(victim, &garbage).unwrap();
            let report = slack.scrub(true).expect("slack scrub");
            prop_assert_eq!(report.checked, profiles.len());
            prop_assert_eq!(report.findings.len(), 1, "exactly the tampered profile");
            prop_assert!(report.findings[0].evidence.as_ref().unwrap().is_file());
            prop_assert!(slack.scrub(true).expect("rescrub").clean());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
