//! Loopback grid suite: coordinator + workers over 127.0.0.1.
//!
//! The assertion is always the determinism invariant the grid advertises:
//! the campaign's canonical result JSON is byte-identical to an
//! uninterrupted serial run — across worker counts, a worker killed
//! mid-campaign (reassignment), a wedged worker (heartbeat eviction),
//! and an interrupt/resume cycle through the checkpoint manifest.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mcd::grid::wire::{hello, read_frame, write_frame, Frame};
use mcd::grid::{AbortMode, GridCampaign, GridError, GridServer, GridWorker};
use mcd::harness::telemetry::replay;
use mcd::harness::{
    Campaign, CampaignReport, CampaignRollup, CampaignSpec, Fault, FaultPlan, ResultCache,
    RetryPolicy, Telemetry, ROLLUP_FILE,
};
use mcd::time::DvfsModel;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcd-grid-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        benchmarks: vec!["adpcm".into(), "mst".into(), "art".into()],
        seeds: vec![5, 7],
        instructions: 2_500,
        models: vec![DvfsModel::XScale],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    }
}

/// The serial reference: the same spec run by the local campaign engine
/// on a throwaway cache.
fn serial_json(spec: &CampaignSpec, dir: &std::path::Path) -> String {
    let cache = ResultCache::open(dir.join("serial-cache")).expect("serial cache");
    Campaign::new(spec.clone())
        .workers(1)
        .run(&cache, &Telemetry::disabled())
        .expect("serial run")
        .to_json()
        .expect("serial run finishes every cell")
}

/// Runs a bound coordinator on its own thread against a cache at
/// `cache_dir`, returning the report when the campaign ends.
fn spawn_server(
    server: GridServer,
    cache_dir: PathBuf,
    telemetry: Telemetry,
) -> thread::JoinHandle<CampaignReport> {
    thread::spawn(move || {
        let cache = ResultCache::open(&cache_dir).expect("grid cache");
        server.run(&cache, &telemetry).expect("grid campaign")
    })
}

#[test]
fn loopback_grid_is_byte_identical_to_serial_for_1_2_and_4_workers() {
    let dir = scratch("counts");
    let spec = small_spec();
    let reference = serial_json(&spec, &dir);

    for workers in [1usize, 2, 4] {
        let cache_dir = dir.join(format!("cache-{workers}"));
        let server = GridCampaign::new(spec.clone())
            .bind("127.0.0.1:0")
            .expect("bind loopback");
        let addr = server.local_addr().expect("local addr");
        let coordinator = spawn_server(server, cache_dir.clone(), Telemetry::disabled());

        let worker_handles: Vec<_> = (0..workers)
            .map(|w| {
                let worker = GridWorker::connect(addr.to_string())
                    .name(format!("w{w}"))
                    .heartbeat_interval(Duration::from_millis(100));
                thread::spawn(move || worker.run().expect("worker run"))
            })
            .collect();

        let report = coordinator.join().expect("coordinator thread");
        let summaries: Vec<_> = worker_handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();

        assert!(!report.interrupted);
        assert_eq!(
            report.to_json().expect("grid run finishes every cell"),
            reference,
            "{workers}-worker grid bytes differ from serial"
        );
        // Workers can't tell audits from first assignments, so their
        // summaries count both; the rollup says how many were audits.
        let rollup = CampaignRollup::load(&cache_dir.join(ROLLUP_FILE)).expect("rollup");
        let grid = rollup.grid.expect("grid rollup");
        let worker_audits: u64 = grid.workers.iter().map(|w| w.audits).sum();
        let computed: u64 = summaries.iter().map(|s| s.cells).sum();
        assert_eq!(
            computed as usize,
            report.computed() + worker_audits as usize
        );
        assert_eq!(report.computed() + report.cached(), report.cells.len());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn governed_loopback_grid_is_byte_identical_to_serial() {
    // The policy axis rides inside the Assign payload's cell spec, so a
    // governed campaign must survive the wire round trip with the same
    // bytes a serial run produces — including the per-policy online rows.
    let dir = scratch("governed");
    let mut spec = small_spec();
    spec.benchmarks = vec!["adpcm".into(), "mst".into()];
    spec.seeds = vec![5];
    spec.policies = vec!["attack-decay".into(), "queue-pi:setpoint=0.6".into()];
    let reference = serial_json(&spec, &dir);

    for workers in [1usize, 2] {
        let cache_dir = dir.join(format!("cache-{workers}"));
        let server = GridCampaign::new(spec.clone())
            .bind("127.0.0.1:0")
            .expect("bind loopback");
        let addr = server.local_addr().expect("local addr");
        let coordinator = spawn_server(server, cache_dir, Telemetry::disabled());
        let worker_handles: Vec<_> = (0..workers)
            .map(|w| {
                let worker = GridWorker::connect(addr.to_string()).name(format!("gov{w}"));
                thread::spawn(move || worker.run().expect("worker run"))
            })
            .collect();
        let report = coordinator.join().expect("coordinator thread");
        for h in worker_handles {
            h.join().expect("worker thread");
        }
        assert_eq!(
            report.to_json().expect("grid run finishes every cell"),
            reference,
            "{workers}-worker governed grid bytes differ from serial"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_is_evicted_and_its_cell_reassigned() {
    let dir = scratch("kill");
    let spec = small_spec();
    let reference = serial_json(&spec, &dir);
    let cache_dir = dir.join("cache");

    let server = GridCampaign::new(spec).bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, cache_dir.clone(), Telemetry::disabled());

    // The victim takes one cell, then drops dead on its second
    // assignment; the survivor finishes everything, including the
    // reassigned cell.
    let victim = GridWorker::connect(addr.to_string())
        .name("victim")
        .abort_after(2, AbortMode::Disconnect);
    let survivor = GridWorker::connect(addr.to_string()).name("survivor");
    let victim = thread::spawn(move || victim.run().expect("victim exits cleanly"));
    let survivor = thread::spawn(move || survivor.run().expect("survivor run"));

    let report = coordinator.join().expect("coordinator thread");
    victim.join().expect("victim thread");
    survivor.join().expect("survivor thread");

    assert_eq!(
        report
            .to_json()
            .expect("campaign completes despite the kill"),
        reference,
        "reassignment changed the result bytes"
    );
    let rollup = CampaignRollup::load(
        &ResultCache::open(&cache_dir)
            .unwrap()
            .dir()
            .join(ROLLUP_FILE),
    )
    .expect("rollup saved");
    let grid = rollup.grid.expect("grid attribution present");
    assert!(
        grid.reassignments >= 1,
        "the killed worker's in-flight cell was reassigned"
    );
    assert!(grid.workers.len() >= 2, "both workers attributed");
    assert!(grid.wire_bytes_in > 0 && grid.wire_bytes_out > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wedged_worker_is_evicted_on_heartbeat_timeout() {
    let dir = scratch("wedge");
    let spec = small_spec();
    let reference = serial_json(&spec, &dir);

    let server = GridCampaign::new(spec)
        .heartbeat_timeout(Duration::from_millis(300))
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, dir.join("cache"), Telemetry::disabled());

    // The wedge holds its socket open but goes silent forever; its thread
    // is deliberately detached (it dies with the test process). Only the
    // heartbeat timeout can reclaim its cell.
    let wedge = GridWorker::connect(addr.to_string())
        .name("wedge")
        .abort_after(1, AbortMode::Wedge);
    thread::spawn(move || {
        let _ = wedge.run();
    });
    let healthy = GridWorker::connect(addr.to_string())
        .name("healthy")
        .heartbeat_interval(Duration::from_millis(50));
    let healthy = thread::spawn(move || healthy.run().expect("healthy run"));

    let report = coordinator.join().expect("coordinator thread");
    healthy.join().expect("healthy thread");
    assert_eq!(
        report
            .to_json()
            .expect("campaign completes despite the wedge"),
        reference,
        "heartbeat eviction changed the result bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_grid_campaign_resumes_from_checkpoint() {
    let dir = scratch("resume");
    let spec = small_spec();
    let reference = serial_json(&spec, &dir);
    let cache_dir = dir.join("cache");
    let checkpoint = dir.join("checkpoint.json");

    // Phase 1: drain after two computed results, as if SIGINT landed.
    let interrupt = Arc::new(AtomicBool::new(false));
    let server = GridCampaign::new(spec.clone())
        .checkpoint(&checkpoint)
        .interrupt(Arc::clone(&interrupt))
        .drain_after_results(2)
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, cache_dir.clone(), Telemetry::disabled());
    let worker = GridWorker::connect(addr.to_string()).name("first");
    let worker = thread::spawn(move || worker.run().expect("first worker"));

    let report = coordinator.join().expect("coordinator thread");
    let summary = worker.join().expect("worker thread");
    assert!(report.interrupted, "the drain marks the report interrupted");
    assert!(
        interrupt.load(Ordering::SeqCst),
        "the interrupt flag was raised"
    );
    assert!(
        report.skipped() > 0,
        "unclaimed cells were skipped, not run"
    );
    assert!(
        summary.drained,
        "the worker was told to drain, not shut down"
    );
    assert!(checkpoint.is_file(), "a resumable checkpoint exists");

    // Phase 2: resume from the manifest alone — the spec is embedded.
    let server = GridCampaign::from_checkpoint(&checkpoint)
        .expect("resume from checkpoint")
        .checkpoint(&checkpoint)
        .bind("127.0.0.1:0")
        .expect("bind resume");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, cache_dir, Telemetry::disabled());
    let worker = GridWorker::connect(addr.to_string()).name("second");
    let worker = thread::spawn(move || worker.run().expect("second worker"));

    let resumed = coordinator.join().expect("resumed coordinator");
    worker.join().expect("second worker thread");
    assert!(!resumed.interrupted);
    assert!(
        resumed.cached() >= 2,
        "phase-1 results came back from the cache, not recomputation"
    );
    assert_eq!(
        resumed.to_json().expect("resume finishes every cell"),
        reference,
        "interrupt/resume changed the result bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fully_cached_rerun_completes_with_zero_workers() {
    let dir = scratch("cached");
    let spec = small_spec();
    let cache_dir = dir.join("cache");

    // Seed the cache with a one-worker grid run.
    let server = GridCampaign::new(spec.clone())
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, cache_dir.clone(), Telemetry::disabled());
    let worker = GridWorker::connect(addr.to_string());
    let worker = thread::spawn(move || worker.run().expect("seed worker"));
    let seeded = coordinator.join().expect("seed run");
    worker.join().expect("seed worker thread");

    // Every cell is now a hit: the rerun needs no workers at all.
    let server = GridCampaign::new(spec)
        .bind("127.0.0.1:0")
        .expect("bind rerun");
    let cache = ResultCache::open(&cache_dir).expect("cache");
    let report = server
        .run(&cache, &Telemetry::disabled())
        .expect("cached rerun");
    assert_eq!(report.cached(), report.cells.len());
    assert_eq!(report.to_json(), seeded.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_side_deterministic_panic_propagates_as_a_failed_cell() {
    let dir = scratch("panic");
    let cache_dir = dir.join("cache");

    let server = GridCampaign::new(small_spec())
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, cache_dir.clone(), Telemetry::disabled());

    // Cell 0 panics identically on every attempt at the worker; the
    // fail-fast verdict must reach the coordinator instead of the cell
    // being endlessly reassigned.
    let worker = GridWorker::connect(addr.to_string())
        .retry(RetryPolicy::attempts(5))
        .chaos(FaultPlan::new(vec![Fault::Panic {
            cell: 0,
            attempts: u32::MAX,
        }]));
    let worker = thread::spawn(move || worker.run().expect("worker run"));

    let report = coordinator.join().expect("coordinator thread");
    worker.join().expect("worker thread");

    assert_eq!(report.failed(), 1, "exactly the poisoned cell failed");
    assert_eq!(
        report.computed() + report.cached(),
        report.cells.len() - 1,
        "every other cell still finished"
    );
    assert!(
        report.to_json().is_none(),
        "an unfinished campaign has no canonical document"
    );
    let rollup = CampaignRollup::load(
        &ResultCache::open(&cache_dir)
            .unwrap()
            .dir()
            .join(ROLLUP_FILE),
    )
    .expect("rollup saved");
    assert!(
        rollup
            .stall_causes
            .iter()
            .any(|c| c.cause == "panic-deterministic" && c.cells == 1),
        "the failure is attributed to a deterministic panic: {:?}",
        rollup.stall_causes
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lying_worker_is_caught_quarantined_and_blamed() {
    let dir = scratch("liar");
    let spec = small_spec();
    let cells = spec.benchmarks.len() * spec.seeds.len() * spec.models.len();
    let reference = serial_json(&spec, &dir);
    let cache_dir = dir.join("cache");

    // Audit every worker-computed cell so the liar cannot slip a single
    // forged result past the coordinator.
    let server = GridCampaign::new(spec)
        .audit_rate(1)
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, cache_dir.clone(), Telemetry::disabled());

    // The liar connects first (so it is guaranteed at least one
    // assignment) and forges every result it reports; three honest
    // workers join right behind it and serve as auditors.
    let liar = GridWorker::connect(addr.to_string())
        .name("liar")
        .chaos(FaultPlan::liar(0xDEC0DE, cells));
    let liar = thread::spawn(move || liar.run());
    thread::sleep(Duration::from_millis(50));
    let honest: Vec<_> = (0..3)
        .map(|w| {
            let worker = GridWorker::connect(addr.to_string()).name(format!("honest{w}"));
            thread::spawn(move || worker.run().expect("honest worker"))
        })
        .collect();

    let report = coordinator.join().expect("coordinator thread");
    let verdict = liar.join().expect("liar thread");
    for h in honest {
        h.join().expect("honest thread");
    }

    assert!(
        matches!(verdict, Err(GridError::Rejected(ref r)) if r.contains("diverged")),
        "the liar was evicted mid-session, got {verdict:?}"
    );
    assert_eq!(
        report
            .to_json()
            .expect("campaign still finishes every cell"),
        reference,
        "forged results leaked into the published bytes"
    );

    let rollup = CampaignRollup::load(
        &ResultCache::open(&cache_dir)
            .unwrap()
            .dir()
            .join(ROLLUP_FILE),
    )
    .expect("rollup saved");
    assert!(!rollup.healthy(), "divergences make the campaign unhealthy");
    let grid = rollup.grid.expect("grid attribution present");
    assert!(grid.divergences >= 1, "at least one audit diverged");
    assert_eq!(grid.quarantined_workers, 1, "exactly the liar quarantined");
    let blamed: Vec<_> = grid
        .workers
        .iter()
        .filter(|w| w.quarantined)
        .map(|w| w.peer.clone())
        .collect();
    assert_eq!(blamed.len(), 1, "exactly one worker blamed: {blamed:?}");
    assert!(
        blamed[0].starts_with("liar@"),
        "blame names the liar: {blamed:?}"
    );
    assert!(
        grid.workers
            .iter()
            .any(|w| !w.quarantined && w.verified > 0),
        "honest workers accumulated verified audits"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_mismatch_is_rejected_at_handshake() {
    let dir = scratch("reject");
    let server = GridCampaign::new(small_spec())
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let coordinator = spawn_server(server, dir.join("cache"), Telemetry::disabled());

    // A peer speaking the wrong protocol version gets a Reject, never an
    // assignment.
    let mut bogus = std::net::TcpStream::connect(addr).expect("connect");
    write_frame(
        &mut bogus,
        &Frame::Hello {
            protocol: "mcd-grid-wire/999".into(),
            worker: "time-traveler".into(),
            spec_digest: String::new(),
            fingerprint: None,
        },
    )
    .expect("send bogus hello");
    let (frame, _) = read_frame(&mut bogus).expect("read response");
    assert!(
        matches!(frame, Frame::Reject { ref reason } if reason.contains("mcd-grid-wire/2")),
        "got {frame:?}"
    );
    drop(bogus);

    // A digest-pinned worker for a different campaign is refused too.
    let mut wrong = std::net::TcpStream::connect(addr).expect("connect");
    write_frame(&mut wrong, &hello("stranger", "not-this-campaign")).expect("send hello");
    let (frame, _) = read_frame(&mut wrong).expect("read response");
    assert!(matches!(frame, Frame::Reject { .. }), "got {frame:?}");
    drop(wrong);

    // The campaign itself is unharmed: a real worker finishes it.
    let worker = GridWorker::connect(addr.to_string());
    let worker = thread::spawn(move || worker.run().expect("worker run"));
    let report = coordinator.join().expect("coordinator thread");
    worker.join().expect("worker thread");
    assert!(report.to_json().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_telemetry_is_forwarded_and_attributed() {
    let dir = scratch("telemetry");
    let log = dir.join("campaign.jsonl");

    let server = GridCampaign::new(small_spec())
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let telemetry = Telemetry::to_file(&log).expect("telemetry file");
    let coordinator = spawn_server(server, dir.join("cache"), telemetry);
    let worker = GridWorker::connect(addr.to_string()).name("narrator");
    let worker = thread::spawn(move || worker.run().expect("worker run"));
    coordinator.join().expect("coordinator thread");
    worker.join().expect("worker thread");

    let (events, torn) = replay(&log).expect("replay telemetry");
    assert!(torn.is_none(), "stream is well-formed JSONL");
    let named = |name: &str| {
        events
            .iter()
            .filter(|e| e.get("event").and_then(|v| v.as_str()) == Some(name))
            .count()
    };
    assert!(named("grid_worker_joined") >= 1);
    assert!(named("grid_cell_assigned") >= 1);
    assert!(named("grid_cell_result") >= 1);
    assert!(
        events
            .iter()
            .any(|e| { e.get("worker").is_some() && e.get("worker_t_us").is_some() }),
        "worker-side events arrive attributed and restamped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
