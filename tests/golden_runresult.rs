//! Byte-identity regression gate for the simulation kernel.
//!
//! Re-runs the golden configuration matrix and compares the serialized
//! results against the committed fixture, byte for byte. Performance work on
//! the kernel (edge scheduling, fast-forward, sync-window caching, queue
//! layout) must leave this fixture untouched; a mismatch means simulated
//! behaviour changed. To change behaviour deliberately, regenerate with
//!
//! ```text
//! cargo run --release --example golden_dump > tests/fixtures/golden_runresults.json
//! ```
//!
//! and let the fixture diff be part of the review.

#[test]
fn run_results_match_committed_fixture() {
    let fixture = include_str!("fixtures/golden_runresults.json");
    let rendered = mcd::golden::render();
    if rendered != fixture {
        // A full-file assert_eq! dump is unreadable; report the first
        // configuration that diverged instead.
        for (got, want) in rendered.lines().zip(fixture.lines()) {
            assert_eq!(
                got, want,
                "RunResult diverged from tests/fixtures/golden_runresults.json \
                 (regenerate with `cargo run --release --example golden_dump` \
                 only if the behaviour change is intended)"
            );
        }
        panic!(
            "golden fixture length mismatch: rendered {} bytes, fixture {} bytes",
            rendered.len(),
            fixture.len()
        );
    }
}
