//! Byte-identity regression gate for the simulation kernel.
//!
//! Re-runs the golden configuration matrix and compares the serialized
//! results against the committed fixture, byte for byte. Performance work on
//! the kernel (edge scheduling, fast-forward, sync-window caching, queue
//! layout) must leave this fixture untouched; a mismatch means simulated
//! behaviour changed. To change behaviour deliberately, regenerate with
//!
//! ```text
//! cargo run --release --example golden_dump > tests/fixtures/golden_runresults.json
//! ```
//!
//! and let the fixture diff be part of the review.

use mcd::pipeline::{
    simulate, simulate_governed_traced, simulate_traced, AttackDecay, MachineConfig, TraceConfig,
};
use mcd::workload::suites;

#[test]
fn run_results_match_committed_fixture() {
    let fixture = include_str!("fixtures/golden_runresults.json");
    let rendered = mcd::golden::render();
    if rendered != fixture {
        // A full-file assert_eq! dump is unreadable; report the first
        // configuration that diverged instead.
        for (got, want) in rendered.lines().zip(fixture.lines()) {
            assert_eq!(
                got, want,
                "RunResult diverged from tests/fixtures/golden_runresults.json \
                 (regenerate with `cargo run --release --example golden_dump` \
                 only if the behaviour change is intended)"
            );
        }
        panic!(
            "golden fixture length mismatch: rendered {} bytes, fixture {} bytes",
            rendered.len(),
            fixture.len()
        );
    }
}

/// The observability layer's core contract: attaching a trace sink must not
/// perturb the simulation. Serialized `RunResult` bytes are compared, so
/// any drift — timing, energy ledger, cache statistics — fails.
#[test]
fn run_result_bytes_identical_with_tracing_on_and_off() {
    let prof = suites::by_name("gcc").expect("known benchmark");
    let machine = MachineConfig::baseline_mcd(5);

    let plain = simulate(&machine, &prof, 6_000);
    let (traced, _trace) = simulate_traced(&machine, &prof, 6_000, TraceConfig::full());
    assert_eq!(
        serde_json::to_string(&plain).expect("serializable"),
        serde_json::to_string(&traced).expect("serializable"),
        "tracing must not change RunResult bytes (static machine)"
    );

    // Same contract under an online governor, where the trace hooks fire on
    // the control path too.
    let governed = |traced: bool| {
        use mcd::pipeline::Pipeline;
        use mcd::workload::WorkloadGenerator;
        let machine = MachineConfig::baseline_mcd(7);
        let generator = WorkloadGenerator::new(prof.clone(), machine.seed);
        let p = Pipeline::new(machine, generator);
        if traced {
            p.run_with_governor_traced(12_000, AttackDecay::paper_like(), TraceConfig::full())
                .0
        } else {
            p.run_with_governor(12_000, AttackDecay::paper_like())
        }
    };
    assert_eq!(
        serde_json::to_string(&governed(false)).expect("serializable"),
        serde_json::to_string(&governed(true)).expect("serializable"),
        "tracing must not change RunResult bytes (governed machine)"
    );
}

/// Two identical traced runs must produce byte-identical `RunTrace`s — the
/// trace is as deterministic as the simulation it observes.
#[test]
fn run_trace_is_deterministic() {
    let prof = suites::by_name("bzip2").expect("known benchmark");
    let machine = MachineConfig::baseline_mcd(3);
    let run = || {
        simulate_governed_traced(
            &machine,
            &prof,
            12_000,
            AttackDecay::paper_like(),
            TraceConfig::default(),
        )
    };
    let (ra, ta) = run();
    let (rb, tb) = run();
    assert_eq!(ra.total_time, rb.total_time);
    assert_eq!(
        serde_json::to_string(&ta).expect("serializable"),
        serde_json::to_string(&tb).expect("serializable"),
        "RunTrace must be byte-deterministic"
    );
    // Sampled mode is deterministic too, and strictly smaller.
    let (_, sampled) = simulate_traced(&machine, &prof, 6_000, TraceConfig::default());
    let (_, full) = simulate_traced(&machine, &prof, 6_000, TraceConfig::full());
    let occ = |t: &mcd::trace::RunTrace| t.domains.iter().map(|d| d.occupancy.len()).sum::<usize>();
    assert!(occ(&sampled) < occ(&full), "sampling must thin the record");
}
