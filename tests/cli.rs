//! Smoke tests through the real `mcd-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcd-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn campaign_dry_run_previews_the_grid_without_executing() {
    let cache = scratch("dryrun");
    let out = Command::new(env!("CARGO_BIN_EXE_mcd-cli"))
        .args([
            "campaign",
            "run",
            "--dry-run",
            "--benchmarks",
            "adpcm,gcc",
            "--seeds",
            "5",
            "--instructions",
            "2000",
            "--policy",
            "attack-decay:decay=0.01,attack=0.1",
            "--policy",
            "queue-pi",
            "--cache-dir",
            cache.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("run mcd-cli");
    assert!(out.status.success(), "dry run exits 0: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");

    // The preview names every scenario each cell will run, with the policy
    // specs canonicalized, and one row per expanded cell with a cache
    // verdict.
    assert!(stdout.contains("2 cells x 7 scenarios"), "{stdout}");
    assert!(
        stdout.contains(
            "baseline baseline-mcd dynamic-1% dynamic-5% global \
             online-attack-decay:attack=0.1,decay=0.01 online-queue-pi"
        ),
        "{stdout}"
    );
    for cell in [
        "adpcm/s5/n2000/XScale+attack-decay:attack=0.1,decay=0.01+queue-pi",
        "gcc/s5/n2000/XScale+attack-decay:attack=0.1,decay=0.01+queue-pi",
    ] {
        assert!(stdout.contains(cell), "missing {cell} in:\n{stdout}");
    }
    assert!(stdout.contains("missing"), "{stdout}");
    assert!(stdout.contains("2 to compute"), "{stdout}");

    // Nothing ran: the cache holds no cell results.
    let computed = std::fs::read_dir(&cache)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(computed, 0, "dry run must not execute cells");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn campaign_rejects_unknown_policies_before_running() {
    let cache = scratch("badpolicy");
    let out = Command::new(env!("CARGO_BIN_EXE_mcd-cli"))
        .args([
            "campaign",
            "run",
            "--dry-run",
            "--benchmarks",
            "adpcm",
            "--policy",
            "thermal-cap",
            "--cache-dir",
            cache.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("run mcd-cli");
    assert!(!out.status.success(), "unknown policy must fail");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 output");
    assert!(stderr.contains("thermal-cap"), "{stderr}");
    let _ = std::fs::remove_dir_all(&cache);
}
