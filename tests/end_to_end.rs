//! Cross-crate integration: the full paper methodology on a small window.

use mcd::core::{run_benchmark, ExperimentConfig};
use mcd::pipeline::DomainId;
use mcd::time::DvfsModel;
use mcd::workload::suites;

#[test]
fn five_configurations_hold_their_invariants() {
    let cfg = ExperimentConfig::paper(5, 20_000, DvfsModel::XScale);
    let profile = suites::by_name("gcc").expect("known benchmark");
    let r = run_benchmark(&profile, &cfg);

    let perf = r.perf_degradation();
    let energy = r.energy_savings();
    let ed = r.energy_delay_improvement();

    // Baseline MCD pays for synchronization in both time and energy.
    assert!(perf[0] > 0.0, "MCD must be slower: {:?}", perf);
    assert!(energy[0] < 0.01, "MCD can't save energy: {:?}", energy);
    assert!(ed[0] < 0.0, "MCD ED must be worse: {:?}", ed);

    // Dynamic configurations save energy; θ=5% at least as much as θ=1%.
    assert!(energy[2] > 0.0, "dynamic-5% saves energy: {:?}", energy);
    assert!(
        energy[2] >= energy[1] - 0.03,
        "5% >= 1% (tolerance): {:?}",
        energy
    );

    // gcc is the paper's showcase for integer-domain scaling: per-domain
    // scaling must beat global voltage scaling on energy-delay.
    assert!(
        ed[2] > ed[3],
        "dynamic-5% ED {:.3} vs global {:.3}",
        ed[2],
        ed[3]
    );

    // The front end never scales; the FP domain bottoms out for a benchmark
    // with almost no floating point.
    let fe = r.domain_summary5[DomainId::FrontEnd.index()];
    assert_eq!(fe.min_frequency_hz, 1_000_000_000);
    let fp = r.domain_summary5[DomainId::FloatingPoint.index()];
    assert!(
        fp.mean_frequency_hz < 600e6,
        "FP should scale deep: {:.3e}",
        fp.mean_frequency_hz
    );
}

#[test]
fn memory_bound_benchmark_is_the_best_case_for_mcd() {
    let cfg = ExperimentConfig::paper(5, 30_000, DvfsModel::XScale);
    let mcf = run_benchmark(&suites::by_name("mcf").expect("known"), &cfg);
    let ed = mcf.energy_delay_improvement();
    // mcf's misses leave slack everywhere: the dynamic configuration must
    // post a clearly positive ED improvement and at least match global
    // scaling (at full experiment scale it wins by ~2x; this small window
    // carries warm-up transients, so allow a one-point band).
    assert!(ed[2] > 0.05, "mcf dynamic-5% ED {:.3}", ed[2]);
    assert!(
        ed[2] > ed[3] - 0.01,
        "mcf dynamic-5% {:.3} vs global {:.3}",
        ed[2],
        ed[3]
    );
}

#[test]
fn global_frequency_matches_dynamic_slowdown_band() {
    let cfg = ExperimentConfig::paper(5, 20_000, DvfsModel::XScale);
    let r = run_benchmark(&suites::by_name("bzip2").expect("known"), &cfg);
    let perf = r.perf_degradation();
    // The global run's degradation tracks dynamic-5%'s within the
    // 32-point-grid quantization.
    assert!(
        (perf[3] - perf[2]).abs() < 0.08,
        "global {:.3} should track dynamic-5% {:.3}",
        perf[3],
        perf[2]
    );
    assert!(r.global_frequency.as_hz() < 1_000_000_000);
}
