//! Validates the Chrome trace_event export end-to-end: run a traced cell,
//! render the JSON, and check the properties a trace viewer needs —
//! well-formed document, nondecreasing timestamps, and a frequency track
//! for every one of the four clock domains. CI runs this against the same
//! export path `mcd-cli trace` uses.

use mcd::pipeline::{simulate_governed_traced, AttackDecay, MachineConfig, TraceConfig};
use mcd::trace::{chrome_trace_json, DOMAINS, DOMAIN_LABELS};
use mcd::workload::suites;
use serde_json::Value;

fn exported_doc() -> Value {
    let prof = suites::by_name("bzip2").expect("known benchmark");
    let (run, trace) = simulate_governed_traced(
        &MachineConfig::baseline_mcd(5),
        &prof,
        30_000,
        AttackDecay::paper_like(),
        TraceConfig::full(),
    );
    assert_eq!(run.committed, 30_000);
    assert_eq!(trace.domains.len(), DOMAINS);
    let json = chrome_trace_json(&trace);
    serde_json::from_str(&json).expect("export must be valid JSON")
}

#[test]
fn exported_trace_is_well_formed_chrome_json() {
    let doc = exported_doc();
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event carries the trace_event required fields, and timestamps
    // never go backwards (Perfetto rejects out-of-order counter samples).
    let mut prev_ts = f64::NEG_INFINITY;
    for e in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
        let ph = e.get("ph").and_then(Value::as_str).expect("phase string");
        assert!(
            matches!(ph, "M" | "C" | "X"),
            "unexpected event phase {ph:?}"
        );
        if ph == "X" {
            assert!(e.get("dur").is_some(), "complete slice missing dur: {e:?}");
        }
        let ts = e
            .get("ts")
            .and_then(Value::as_number)
            .expect("numeric ts")
            .as_f64();
        assert!(ts.is_finite() && ts >= 0.0);
        assert!(ts >= prev_ts, "timestamps must be nondecreasing");
        prev_ts = ts;
    }

    // All four domains are present: a named thread track and a frequency
    // counter track each.
    for (tid, label) in DOMAIN_LABELS.iter().enumerate() {
        let named = events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("tid").and_then(Value::as_number).map(|n| n.as_f64()) == Some(tid as f64)
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    == Some(label)
        });
        assert!(named, "missing thread_name metadata for domain {label}");

        let freq_track = format!("freq:{label} MHz");
        let samples = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("C")
                    && e.get("name").and_then(Value::as_str) == Some(freq_track.as_str())
            })
            .count();
        assert!(samples >= 2, "frequency track for {label} too sparse");
    }

    // A governed MCD run realizes synchronization stalls; the viewer shows
    // them as slices.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.get("name").and_then(Value::as_str), Some(n) if n.starts_with("sync-stall:"))),
        "governed MCD run should export sync-stall slices"
    );
}
