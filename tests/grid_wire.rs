//! Wire-protocol suite for `mcd-grid-wire/2`.
//!
//! Two layers of guarantees: every frame the protocol defines round-trips
//! through encode→decode byte-exactly (exemplar and property-based), and
//! every way a frame can arrive damaged — truncated at any byte, torn
//! length prefix, unknown tag, tag/payload disagreement, garbage payload —
//! is rejected with a structured error, never a panic and never a
//! silently wrong frame. Mirrors the torn-write style of `tests/chaos.rs`.
//! Plus `/1` interop: handshake frames written by the previous protocol
//! revision (no fingerprint, no advertised heartbeat) still decode.

use std::io::Cursor;
use std::time::Duration;

use mcd::grid::wire::{
    decode, encode, hello, read_frame, write_frame, Frame, WireError, WireOutcome, MAX_FRAME_BYTES,
    WIRE_PROTOCOL,
};
use mcd::harness::{CellOutcome, CellSpec};
use mcd::time::DvfsModel;

use proptest::prelude::*;
use serde_json::{Map, Value};

fn sample_cell(seed: u64) -> CellSpec {
    CellSpec {
        benchmark: "adpcm".into(),
        seed,
        instructions: 800,
        model: DvfsModel::XScale,
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    }
}

/// Frames lack `PartialEq` (results carry float-heavy payloads), so
/// equality is judged where it matters: on the wire bytes.
fn assert_round_trip(frame: &Frame) {
    let bytes = encode(frame);
    let (decoded, consumed) = decode(&bytes).expect("well-formed frame decodes");
    assert_eq!(consumed, bytes.len(), "whole frame consumed");
    assert_eq!(
        encode(&decoded),
        bytes,
        "decode→encode reproduces the wire bytes for {}",
        frame.name()
    );
}

#[test]
fn every_frame_variant_round_trips() {
    let cell = sample_cell(3);
    let result = cell.run();
    let frames = vec![
        hello("worker-a", "abc123"),
        Frame::Hello {
            protocol: WIRE_PROTOCOL.to_string(),
            worker: String::new(),
            spec_digest: String::new(),
            fingerprint: None,
        },
        Frame::Welcome {
            worker_id: 7,
            spec_digest: "abc123".into(),
            cells: 42,
            heartbeat_us: Some(250_000),
        },
        Frame::Welcome {
            worker_id: 8,
            spec_digest: "abc123".into(),
            cells: 42,
            heartbeat_us: None,
        },
        Frame::Reject {
            reason: "protocol mismatch".into(),
        },
        Frame::Assign {
            cell: 11,
            spec: cell.clone(),
        },
        Frame::CellResult {
            cell: 11,
            outcome: WireOutcome::Computed {
                result,
                attempts: 2,
            },
        },
        Frame::CellResult {
            cell: 12,
            outcome: WireOutcome::Failed {
                attempts: 3,
                message: "panicked: \"quoted\" and \\escaped\\".into(),
                deterministic: true,
            },
        },
        Frame::CellResult {
            cell: 13,
            outcome: WireOutcome::Stalled { waited_us: 123_456 },
        },
        Frame::Heartbeat,
        Frame::TelemetryEvent {
            event: serde_json::from_str(r#"{"event":"cell_started","cell":4}"#).unwrap(),
        },
        Frame::Drain,
        Frame::Shutdown,
    ];
    for frame in &frames {
        assert_round_trip(frame);
    }
}

/// A raw frame as a `/1` peer would have written it: length prefix, tag
/// byte, compact JSON payload — with the `/2`-only keys absent.
fn raw_frame(tag: u8, payload: &str) -> Vec<u8> {
    let len = 1 + payload.len();
    let mut buf = ((len) as u32).to_be_bytes().to_vec();
    buf.push(tag);
    buf.extend_from_slice(payload.as_bytes());
    buf
}

#[test]
fn v1_hello_without_fingerprint_still_decodes() {
    let payload = r#"{"Hello":{"protocol":"mcd-grid-wire/1","spec_digest":"","worker":"old"}}"#;
    let (frame, consumed) = decode(&raw_frame(1, payload)).expect("/1 Hello decodes");
    assert_eq!(consumed, 4 + 1 + payload.len());
    let Frame::Hello {
        protocol,
        worker,
        fingerprint,
        ..
    } = frame
    else {
        panic!("decoded to a different frame");
    };
    assert_eq!(protocol, "mcd-grid-wire/1");
    assert_eq!(worker, "old");
    assert_eq!(
        fingerprint, None,
        "a /1 Hello never carried a fingerprint key"
    );
}

#[test]
fn v1_welcome_without_heartbeat_still_decodes() {
    let payload = r#"{"Welcome":{"cells":3,"spec_digest":"d","worker_id":2}}"#;
    let (frame, _) = decode(&raw_frame(2, payload)).expect("/1 Welcome decodes");
    let Frame::Welcome {
        worker_id,
        heartbeat_us,
        ..
    } = frame
    else {
        panic!("decoded to a different frame");
    };
    assert_eq!(worker_id, 2);
    assert_eq!(
        heartbeat_us, None,
        "a /1 Welcome never advertised a heartbeat"
    );
}

#[test]
fn assign_without_a_policies_key_decodes_to_a_policy_free_cell() {
    // An Assign as written before the online-policy axis existed: the cell
    // spec has no `policies` key at all.
    let payload = r#"{"Assign":{"cell":11,"spec":{"benchmark":"adpcm","instructions":800,"model":"XScale","seed":3,"thetas":[0.01,0.05]}}}"#;
    let (frame, _) = decode(&raw_frame(4, payload)).expect("pre-policy Assign decodes");
    let Frame::Assign { cell, spec } = frame else {
        panic!("decoded to a different frame");
    };
    assert_eq!(cell, 11);
    assert_eq!(spec, sample_cell(3));
    assert!(
        spec.policies.is_empty(),
        "a pre-policy Assign never carried policies"
    );
}

#[test]
fn policy_free_assigns_keep_their_pre_policy_wire_bytes() {
    let bytes = encode(&Frame::Assign {
        cell: 11,
        spec: sample_cell(3),
    });
    let text = String::from_utf8_lossy(&bytes);
    assert!(
        !text.contains("policies"),
        "a policy-free Assign must serialize exactly as before the axis existed"
    );

    // Governed assigns carry the axis and round-trip byte-exactly.
    let mut governed = sample_cell(3);
    governed.policies = vec!["attack-decay".into(), "queue-pi:kp=0.7".into()];
    let frame = Frame::Assign {
        cell: 12,
        spec: governed.clone(),
    };
    assert_round_trip(&frame);
    let (decoded, _) = decode(&encode(&frame)).expect("governed Assign decodes");
    let Frame::Assign { spec, .. } = decoded else {
        panic!("decoded to a different frame");
    };
    assert_eq!(spec, governed);
}

#[test]
fn hello_carries_the_current_build_fingerprint() {
    let Frame::Hello {
        protocol,
        fingerprint,
        ..
    } = hello("w", "digest-1")
    else {
        panic!("hello() builds a Hello");
    };
    assert_eq!(protocol, WIRE_PROTOCOL);
    let fp = fingerprint.expect("/2 hello is fingerprinted");
    assert_eq!(fp.spec_digest, "digest-1");
    assert!(!fp.version.is_empty());
    assert!(fp.target.contains('-'), "target is arch-os");
    assert!(fp.summary().contains(&fp.version));
}

#[test]
fn computed_results_survive_the_wire_byte_exactly() {
    let cell = sample_cell(9);
    let reference = serde_json::to_string(&cell.run()).unwrap();
    let frame = Frame::CellResult {
        cell: 0,
        outcome: WireOutcome::Computed {
            result: cell.run(),
            attempts: 1,
        },
    };
    let (decoded, _) = decode(&encode(&frame)).unwrap();
    let Frame::CellResult {
        outcome: WireOutcome::Computed { result, .. },
        ..
    } = decoded
    else {
        panic!("decoded to a different frame");
    };
    assert_eq!(
        serde_json::to_string(&result).unwrap(),
        reference,
        "simulator results cross the wire without any byte drift"
    );
}

#[test]
fn wire_outcome_mirrors_cell_outcomes() {
    let stalled = CellOutcome::Stalled {
        waited: Duration::from_micros(777),
    };
    let wire = WireOutcome::from_outcome(&stalled).expect("stalls cross the wire");
    assert!(matches!(
        wire.into_outcome(),
        CellOutcome::Stalled { waited } if waited == Duration::from_micros(777)
    ));
    let cached = CellOutcome::Cached(sample_cell(1).run());
    assert!(
        WireOutcome::from_outcome(&cached).is_none(),
        "workers have no cache, so Cached never crosses the wire"
    );
    assert!(WireOutcome::from_outcome(&CellOutcome::Skipped).is_none());
}

#[test]
fn every_prefix_truncation_is_rejected_not_misread() {
    let frame = Frame::Assign {
        cell: 5,
        spec: sample_cell(5),
    };
    let bytes = encode(&frame);
    for cut in 0..bytes.len() {
        match decode(&bytes[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("prefix of {cut} bytes must be Truncated, got {other:?}"),
        }
    }
}

#[test]
fn oversize_length_prefix_is_rejected_before_allocation() {
    let mut bytes = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
    bytes.push(6);
    assert!(matches!(decode(&bytes), Err(WireError::Oversize(_))));
    assert!(matches!(
        read_frame(&mut Cursor::new(bytes)),
        Err(WireError::Oversize(_))
    ));
}

#[test]
fn zero_length_frame_is_rejected() {
    let bytes = 0u32.to_be_bytes().to_vec();
    assert!(matches!(decode(&bytes), Err(WireError::BadPayload(_))));
}

#[test]
fn unknown_tag_is_rejected() {
    let mut bytes = encode(&Frame::Heartbeat);
    bytes[4] = 200;
    assert!(matches!(decode(&bytes), Err(WireError::UnknownTag(200))));
}

#[test]
fn tag_payload_disagreement_is_rejected() {
    // A Heartbeat payload wearing the Drain tag: both frames are valid on
    // their own, so only the tag cross-check can catch the swap.
    let mut bytes = encode(&Frame::Heartbeat);
    bytes[4] = Frame::Drain.tag();
    match decode(&bytes) {
        Err(WireError::TagMismatch { tag, decoded }) => {
            assert_eq!(tag, Frame::Drain.tag());
            assert_eq!(decoded, "Heartbeat");
        }
        other => panic!("expected TagMismatch, got {other:?}"),
    }
}

#[test]
fn garbage_payload_is_rejected() {
    let payload = b"not json at all";
    let mut bytes = ((1 + payload.len()) as u32).to_be_bytes().to_vec();
    bytes.push(6);
    bytes.extend_from_slice(payload);
    assert!(matches!(decode(&bytes), Err(WireError::BadPayload(_))));
}

#[test]
fn concatenated_frames_decode_in_sequence() {
    let frames = vec![
        hello("w", ""),
        Frame::Heartbeat,
        Frame::Assign {
            cell: 1,
            spec: sample_cell(1),
        },
        Frame::Shutdown,
    ];
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&encode(f));
    }
    let mut offset = 0;
    for f in &frames {
        let (decoded, consumed) = decode(&stream[offset..]).expect("next frame decodes");
        assert_eq!(encode(&decoded), encode(f));
        offset += consumed;
    }
    assert_eq!(offset, stream.len(), "nothing left over");
}

#[test]
fn read_frame_distinguishes_clean_eof_from_torn_stream() {
    assert!(matches!(
        read_frame(&mut Cursor::new(Vec::new())),
        Err(WireError::Eof)
    ));
    let bytes = encode(&Frame::Heartbeat);
    for cut in 1..bytes.len() {
        match read_frame(&mut Cursor::new(bytes[..cut].to_vec())) {
            Err(WireError::Truncated) => {}
            other => panic!("torn stream at {cut} bytes must be Truncated, got {other:?}"),
        }
    }
}

#[test]
fn write_and_read_frame_report_matching_byte_counts() {
    let frame = Frame::Welcome {
        worker_id: 1,
        spec_digest: "d".into(),
        cells: 9,
        heartbeat_us: None,
    };
    let mut wire = Vec::new();
    let written = write_frame(&mut wire, &frame).unwrap();
    assert_eq!(written as usize, wire.len());
    assert_eq!(written as usize, encode(&frame).len());
    let (_, read) = read_frame(&mut Cursor::new(wire)).unwrap();
    assert_eq!(read, written, "wire accounting agrees on both ends");
}

/// Lossy-UTF-8 text from arbitrary bytes (the proptest shim has no
/// string strategy).
fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Handshake frames round-trip whatever names and digests workers
    /// send, including embedded quotes, backslashes, and control bytes.
    #[test]
    fn hello_round_trips_arbitrary_strings(
        worker in proptest::collection::vec(any::<u8>(), 0..48),
        digest in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        assert_round_trip(&hello(&text(&worker), &text(&digest)));
    }

    #[test]
    fn welcome_and_assign_round_trip_arbitrary_numbers(
        worker_id in any::<u64>(),
        cells in any::<u64>(),
        cell in any::<u64>(),
        seed in any::<u64>(),
        instructions in 1u64..100_000,
    ) {
        assert_round_trip(&Frame::Welcome {
            worker_id,
            spec_digest: "d".into(),
            cells,
            heartbeat_us: Some(worker_id),
        });
        assert_round_trip(&Frame::Assign {
            cell,
            spec: CellSpec { seed, instructions, ..sample_cell(0) },
        });
    }

    #[test]
    fn failure_and_stall_results_round_trip(
        cell in any::<u64>(),
        attempts in any::<u32>(),
        message in proptest::collection::vec(any::<u8>(), 0..96),
        deterministic in any::<bool>(),
        waited_us in any::<u64>(),
    ) {
        assert_round_trip(&Frame::CellResult {
            cell,
            outcome: WireOutcome::Failed {
                attempts,
                message: text(&message),
                deterministic,
            },
        });
        assert_round_trip(&Frame::CellResult {
            cell,
            outcome: WireOutcome::Stalled { waited_us },
        });
    }

    /// Telemetry events are free-form JSON objects; arbitrary keys and
    /// values must survive forwarding intact.
    #[test]
    fn telemetry_events_round_trip_arbitrary_objects(
        key in proptest::collection::vec(any::<u8>(), 1..24),
        val in proptest::collection::vec(any::<u8>(), 0..48),
        num in any::<u64>(),
    ) {
        let mut obj = Map::new();
        obj.insert(text(&key), Value::String(text(&val)));
        obj.insert("t_us".to_string(), Value::Number(serde_json::Number::U64(num)));
        assert_round_trip(&Frame::TelemetryEvent { event: Value::Object(obj) });
    }

    /// Arbitrary garbage never panics the decoder: it either decodes (if
    /// it happens to be a valid frame) or returns a structured error.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = decode(&bytes);
        let _ = read_frame(&mut Cursor::new(bytes));
    }
}
