//! Integration of the clocking substrate with the pipeline: sync windows,
//! jitter, DVFS transitions and schedules observed end to end.

use mcd::pipeline::{simulate, DomainId, FrequencySchedule, MachineConfig, ScheduleEntry};
use mcd::time::{DvfsModel, Femtos, Frequency, JitterModel, SyncParams};
use mcd::workload::suites;

#[test]
fn wider_sync_window_costs_more() {
    let profile = suites::by_name("adpcm").expect("known benchmark");
    let mut times = Vec::new();
    for frac in [0.0, 0.3, 0.6] {
        let mut m = MachineConfig::baseline_mcd(4);
        m.sync = SyncParams::new(frac);
        m.jitter = JitterModel::disabled();
        times.push(simulate(&m, &profile, 20_000).total_time);
    }
    assert!(
        times[0] <= times[1],
        "Ts=0 ({}) vs Ts=0.3 ({})",
        times[0],
        times[1]
    );
    assert!(
        times[1] <= times[2],
        "Ts=0.3 ({}) vs Ts=0.6 ({})",
        times[1],
        times[2]
    );
}

#[test]
fn single_clock_machine_pays_no_sync() {
    // With a single clock, the sync parameters are irrelevant by
    // construction: changing them must not change anything.
    let profile = suites::by_name("epic").expect("known benchmark");
    let mut a = MachineConfig::baseline(4);
    a.sync = SyncParams::free();
    let mut b = MachineConfig::baseline(4);
    b.sync = SyncParams::new(0.5);
    let ra = simulate(&a, &profile, 10_000);
    let rb = simulate(&b, &profile, 10_000);
    assert_eq!(ra.total_time, rb.total_time);
}

#[test]
fn transmeta_transitions_idle_the_domain_xscale_does_not() {
    let profile = suites::by_name("g721").expect("known benchmark");
    let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
        at: Femtos::from_micros(2),
        domain: DomainId::Integer,
        frequency: Frequency::from_mhz(800),
    }]);
    let xs = simulate(
        &MachineConfig::dynamic(4, DvfsModel::XScale, sched.clone()),
        &profile,
        20_000,
    );
    let tm = simulate(
        &MachineConfig::dynamic(4, DvfsModel::Transmeta, sched),
        &profile,
        20_000,
    );
    let xs_idle: Femtos = xs.domain_idle.iter().copied().sum();
    let tm_idle: Femtos = tm.domain_idle.iter().copied().sum();
    assert_eq!(xs_idle, Femtos::ZERO, "XScale executes through changes");
    assert!(
        tm_idle >= Femtos::from_micros(10),
        "Transmeta re-lock idles: {tm_idle}"
    );
}

#[test]
fn voltage_tracks_frequency_on_the_operating_curve() {
    // Under XScale the voltage slews with the frequency (~55 µs across the
    // full range), so a run several times that long must show the FP
    // domain's V²-weighted cycles approaching the 0.65 V floor.
    let profile = suites::by_name("mst").expect("known benchmark");
    let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
        at: Femtos::ZERO,
        domain: DomainId::FloatingPoint,
        frequency: Frequency::MIN_SCALED,
    }]);
    let m = MachineConfig::dynamic(4, DvfsModel::XScale, sched);
    let run = simulate(&m, &profile, 100_000);
    let fp = DomainId::FloatingPoint.index();
    let avg_v2 = run.domain_v2_cycles[fp] / run.domain_cycles[fp] as f64;
    assert!(
        avg_v2 < 0.9,
        "FP average V² should fall well below nominal 1.44: {avg_v2}"
    );
}

#[test]
fn transmeta_voltage_trails_frequency() {
    // The Transmeta model drops frequency right after the re-lock but walks
    // the voltage down at 20 µs per step — on a short window the energy
    // benefit is therefore nearly nil even though the clock already runs at
    // a quarter speed. (This asymmetry is why the paper found the Transmeta
    // model far less effective.)
    let profile = suites::by_name("mst").expect("known benchmark");
    let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
        at: Femtos::ZERO,
        domain: DomainId::FloatingPoint,
        frequency: Frequency::MIN_SCALED,
    }]);
    let m = MachineConfig::dynamic(4, DvfsModel::Transmeta, sched);
    let run = simulate(&m, &profile, 30_000);
    let fp = DomainId::FloatingPoint.index();
    let avg_v2 = run.domain_v2_cycles[fp] / run.domain_cycles[fp] as f64;
    let int = DomainId::Integer.index();
    assert!(
        run.avg_frequency_hz[fp] < 0.6 * run.avg_frequency_hz[int],
        "frequency drops promptly"
    );
    assert!(avg_v2 > 1.3, "voltage has barely moved yet: {avg_v2}");
}

#[test]
fn jitter_perturbs_but_does_not_dominate() {
    let profile = suites::by_name("tsp").expect("known benchmark");
    let with = simulate(&MachineConfig::baseline_mcd(4), &profile, 20_000);
    let mut quiet_cfg = MachineConfig::baseline_mcd(4);
    quiet_cfg.jitter = JitterModel::disabled();
    let without = simulate(&quiet_cfg, &profile, 20_000);
    let rel = (with.total_time.as_femtos() as f64 - without.total_time.as_femtos() as f64).abs()
        / without.total_time.as_femtos() as f64;
    // Jitter also reshuffles every edge alignment, so the comparison carries
    // phase luck on top of the direct effect; it must stay second-order.
    assert!(
        rel < 0.15,
        "110 ps jitter should be a second-order effect: {rel}"
    );
}
