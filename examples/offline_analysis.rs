//! The paper's two-phase methodology end to end: trace a full-speed run,
//! derive a per-domain reconfiguration schedule with the off-line tool,
//! replay it in a dynamic run, and compare energy-delay against the
//! baseline.
//!
//! ```sh
//! cargo run --release --example offline_analysis [benchmark] [instructions]
//! ```

use mcd::core::{run_benchmark, ExperimentConfig};
use mcd::pipeline::DomainId;
use mcd::time::DvfsModel;
use mcd::workload::suites;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "art".into());
    let instructions: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120_000);

    let Some(profile) = suites::by_name(&name) else {
        eprintln!(
            "unknown benchmark {name:?}; available: {:?}",
            suites::names()
        );
        std::process::exit(2);
    };

    println!("running the five-configuration experiment for {name} ({instructions} instructions)…");
    let cfg = ExperimentConfig::paper(5, instructions, DvfsModel::XScale);
    let results = run_benchmark(&profile, &cfg);

    let labels = ["baseline MCD", "dynamic-1%", "dynamic-5%", "global"];
    let perf = results.perf_degradation();
    let energy = results.energy_savings();
    let ed = results.energy_delay_improvement();
    println!(
        "\n{:<14} {:>10} {:>10} {:>12}",
        "config", "perf deg", "energy", "energy-delay"
    );
    for i in 0..4 {
        println!(
            "{:<14} {:>9.2}% {:>9.2}% {:>11.2}%",
            labels[i],
            100.0 * perf[i],
            100.0 * energy[i],
            100.0 * ed[i]
        );
    }
    println!("\nglobal scaling settled on {}", results.global_frequency);
    println!("\ndynamic-5% schedule summary (the off-line tool's plan):");
    for d in &DomainId::ALL[1..] {
        let s = results.domain_summary5[d.index()];
        println!(
            "  {:<16} mean {:>7.0} MHz, range {:>4.0}-{:<4.0} MHz, {:.1} reconfigs/1M instr",
            d.label(),
            s.mean_frequency_hz / 1e6,
            s.min_frequency_hz as f64 / 1e6,
            s.max_frequency_hz as f64 / 1e6,
            s.reconfigs_per_mi
        );
    }
}
