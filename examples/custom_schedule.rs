//! Driving the MCD machine with a hand-written reconfiguration schedule —
//! the API a user would build an *on-line* control algorithm on top of (the
//! paper's future work).
//!
//! The example scales the floating-point domain down while a pure-integer
//! benchmark runs, then brings it back, and serializes the schedule to JSON
//! (the simulator's interchange format for reconfiguration logs).
//!
//! ```sh
//! cargo run --release --example custom_schedule
//! ```

use mcd::pipeline::{simulate, DomainId, FrequencySchedule, MachineConfig, ScheduleEntry};
use mcd::power::PowerModel;
use mcd::time::{DvfsModel, Femtos, Frequency};
use mcd::workload::suites;

fn main() {
    let profile = suites::by_name("bzip2").expect("known benchmark");
    let instructions = 120_000;
    let power = PowerModel::paper_calibrated();

    // Scale FP to the floor immediately, nudge the load/store domain down a
    // notch mid-run, and restore it near the end.
    let schedule = FrequencySchedule::from_entries(vec![
        ScheduleEntry {
            at: Femtos::ZERO,
            domain: DomainId::FloatingPoint,
            frequency: Frequency::MIN_SCALED,
        },
        ScheduleEntry {
            at: Femtos::from_micros(30),
            domain: DomainId::LoadStore,
            frequency: Frequency::from_mhz(900),
        },
        ScheduleEntry {
            at: Femtos::from_micros(90),
            domain: DomainId::LoadStore,
            frequency: Frequency::GHZ,
        },
    ]);
    println!(
        "schedule as JSON:\n{}\n",
        schedule.to_json().expect("serializable")
    );

    let baseline = simulate(&MachineConfig::baseline_mcd(7), &profile, instructions);
    let machine = MachineConfig::dynamic(7, DvfsModel::XScale, schedule);
    let run = simulate(&machine, &profile, instructions);

    let e_base = power.energy_of(&baseline).total();
    let e_run = power.energy_of(&run).total();
    println!("bzip2, {instructions} instructions, custom schedule vs static MCD:");
    println!(
        "  time   {} -> {} ({:+.2}%)",
        baseline.total_time,
        run.total_time,
        100.0 * (run.slowdown_vs(&baseline) - 1.0)
    );
    println!("  energy {:+.2}%", 100.0 * (e_run / e_base - 1.0));
    for d in DomainId::ALL {
        println!(
            "  {:<16} mean {:>7.0} MHz, {} transitions",
            d.label(),
            run.avg_frequency_hz[d.index()] / 1e6,
            run.domain_transitions[d.index()]
        );
    }
}
