//! XScale vs Transmeta: how the DVFS transition model changes what the
//! off-line tool can exploit.
//!
//! The XScale-like model slews voltage in fine steps and executes through
//! the change; the Transmeta-like model idles the domain for a 10–20 µs PLL
//! re-lock on every frequency change. The paper found the Transmeta model
//! "far less promising" because short-term behaviour cannot be tracked —
//! this example reproduces that comparison on one benchmark.
//!
//! ```sh
//! cargo run --release --example dvfs_comparison [benchmark] [instructions]
//! ```

use mcd::offline::{derive_schedule, OfflineConfig};
use mcd::pipeline::{simulate, MachineConfig};
use mcd::power::PowerModel;
use mcd::time::DvfsModel;
use mcd::workload::suites;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "art".into());
    let instructions: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120_000);

    let Some(profile) = suites::by_name(&name) else {
        eprintln!(
            "unknown benchmark {name:?}; available: {:?}",
            suites::names()
        );
        std::process::exit(2);
    };

    let power = PowerModel::paper_calibrated();
    let baseline = simulate(&MachineConfig::baseline(5), &profile, instructions);
    let e_base = power.energy_of(&baseline).total();

    println!("{name}: dynamic-5% under both transition models\n");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "model", "reconfs", "perf deg", "energy", "ED improve", "PLL idle"
    );
    for model in [DvfsModel::XScale, DvfsModel::Transmeta] {
        let cfg = OfflineConfig::paper(0.05, model);
        let (analysis, _) = derive_schedule(5, &profile, instructions, &cfg);
        let machine = MachineConfig::dynamic(5, model, analysis.schedule.clone());
        let run = simulate(&machine, &profile, instructions);
        let e = power.energy_of(&run).total();
        let deg = run.slowdown_vs(&baseline) - 1.0;
        let savings = 1.0 - e / e_base;
        let ed = 1.0 - (e / e_base) * (1.0 + deg);
        let idle: mcd::time::Femtos = run.domain_idle.iter().copied().sum();
        println!(
            "{:<10} {:>8} {:>9.2}% {:>9.2}% {:>11.2}% {:>10}",
            format!("{model:?}"),
            analysis.schedule.len(),
            100.0 * deg,
            100.0 * savings,
            100.0 * ed,
            idle
        );
    }
    println!("\nexpected: XScale schedules more changes and achieves better energy-delay.");
    println!("At this window scale the Transmeta model usually schedules *nothing*: a");
    println!("single 10-20 us PLL re-lock would blow the pooled dilation budget — the");
    println!("mechanism behind the paper's finding that Transmeta results were far less");
    println!("promising (its Fig. 8 shows only a handful of changes across 30 ms).");
}
