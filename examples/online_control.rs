//! On-line versus off-line control — the paper's future work, realized.
//!
//! The off-line tool sees the future (it analyzes a completed trace); the
//! on-line attack/decay governor reacts to issue-queue utilization as the
//! program runs. This example compares the two on one benchmark, against
//! the static-MCD baseline.
//!
//! ```sh
//! cargo run --release --example online_control [benchmark] [instructions]
//! ```

use mcd::offline::{derive_schedule, OfflineConfig};
use mcd::pipeline::{simulate, AttackDecay, MachineConfig, Pipeline};
use mcd::power::PowerModel;
use mcd::time::DvfsModel;
use mcd::workload::{suites, WorkloadGenerator};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gcc".into());
    let instructions: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(240_000);
    let Some(profile) = suites::by_name(&name) else {
        eprintln!(
            "unknown benchmark {name:?}; available: {:?}",
            suites::names()
        );
        std::process::exit(2);
    };

    let power = PowerModel::paper_calibrated();
    let mcd = simulate(&MachineConfig::baseline_mcd(5), &profile, instructions);
    let e_mcd = power.energy_of(&mcd).total();

    // Off-line: trace, analyze at θ = 5 %, replay.
    let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
    let (analysis, _) = derive_schedule(5, &profile, instructions, &cfg);
    let offline_machine = MachineConfig::dynamic(5, DvfsModel::XScale, analysis.schedule.clone());
    let offline = simulate(&offline_machine, &profile, instructions);
    let e_off = power.energy_of(&offline).total();

    // On-line: attack/decay, no oracle.
    let online_machine = MachineConfig::dynamic(5, DvfsModel::XScale, Default::default());
    let generator = WorkloadGenerator::new(profile.clone(), online_machine.seed);
    let online = Pipeline::new(online_machine, generator)
        .run_with_governor(instructions, AttackDecay::paper_like());
    let e_on = power.energy_of(&online).total();

    println!("{name}, {instructions} instructions, relative to static baseline MCD:\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>8}",
        "configuration", "perf deg", "energy", "energy-delay", "reconf"
    );
    let report = |label: &str, time: mcd::time::Femtos, energy: f64, reconf: u64| {
        let deg = time.as_femtos() as f64 / mcd.total_time.as_femtos() as f64 - 1.0;
        let savings = 1.0 - energy / e_mcd;
        let ed = 1.0 - (energy / e_mcd) * (1.0 + deg);
        println!(
            "{label:<22} {:>9.2}% {:>9.2}% {:>11.2}% {reconf:>8}",
            100.0 * deg,
            100.0 * savings,
            100.0 * ed
        );
    };
    report(
        "off-line (oracle)",
        offline.total_time,
        e_off,
        analysis.schedule.len() as u64,
    );
    report(
        "on-line attack/decay",
        online.total_time,
        e_on,
        online.domain_transitions.iter().sum(),
    );
    println!(
        "\nthe off-line tool knows the future; a good on-line policy gets close\n\
         (and, as the paper notes, could in principle do better)."
    );
}
