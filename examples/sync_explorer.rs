//! Exploring the cost of inter-domain synchronization: sweep the
//! synchronization window `T_s` and the jitter magnitude, and watch the
//! baseline-MCD overhead respond (§2.2 of the paper).
//!
//! ```sh
//! cargo run --release --example sync_explorer [benchmark]
//! ```

use mcd::pipeline::{simulate, MachineConfig};
use mcd::time::{JitterModel, SyncParams};
use mcd::workload::suites;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "adpcm".into());
    let instructions = 60_000;
    let Some(profile) = suites::by_name(&name) else {
        eprintln!(
            "unknown benchmark {name:?}; available: {:?}",
            suites::names()
        );
        std::process::exit(2);
    };

    let base = simulate(&MachineConfig::baseline(3), &profile, instructions);
    println!("{name}: baseline-MCD overhead vs synchronization window and jitter\n");
    println!("{:>8} {:>14} {:>14}", "T_s", "jitter 110 ps", "no jitter");
    for frac in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut row = format!("{:>7.0}%", 100.0 * frac);
        for jitter in [JitterModel::paper(), JitterModel::disabled()] {
            let mut machine = MachineConfig::baseline_mcd(3);
            machine.sync = SyncParams::new(frac);
            machine.jitter = jitter;
            let run = simulate(&machine, &profile, instructions);
            row.push_str(&format!(
                " {:>13.2}%",
                100.0 * (run.slowdown_vs(&base) - 1.0)
            ));
        }
        println!("{row}");
    }
    println!("\nthe paper assumes T_s = 30% of the faster clock's period; even a zero");
    println!("window leaves residual cost because independent clock edges misalign.");
}
