//! Dumps serialized [`RunResult`](mcd::pipeline::RunResult)s for a fixed
//! matrix of configurations.
//!
//! The output is the fixture consumed by `tests/golden_runresult.rs`: the
//! simulator's results must stay byte-identical across performance work, so
//! the fixture is regenerated only when a PR deliberately changes simulated
//! behaviour (and the diff is then part of the review).
//!
//! ```text
//! cargo run --release --example golden_dump > tests/fixtures/golden_runresults.json
//! ```

fn main() {
    print!("{}", mcd::golden::render());
}
