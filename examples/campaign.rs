//! Running a parameter sweep as an `mcd-harness` campaign.
//!
//! A campaign expands a sweep spec — benchmarks × seeds × DVFS models —
//! into independent cells, runs them on a worker pool, and memoizes every
//! finished cell in a content-addressed cache. Re-running the example (or
//! overlapping sweeps that share cells) recomputes nothing: the second run
//! below reports every cell as cached and produces byte-identical JSON.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use mcd::harness::{Campaign, CampaignSpec, ResultCache, Telemetry};
use mcd::time::DvfsModel;

fn main() {
    // Three benchmarks under both DVFS transition models: 6 cells.
    let spec = CampaignSpec {
        benchmarks: vec!["adpcm".into(), "gcc".into(), "art".into()],
        seeds: vec![5],
        instructions: 40_000,
        models: vec![DvfsModel::XScale, DvfsModel::Transmeta],
        thetas: [0.01, 0.05],
        policies: Vec::new(),
    };
    let cache = ResultCache::open("target/mcd-campaign-cache").expect("create cache dir");
    let campaign = Campaign::new(spec).workers(0); // 0 = one worker per core

    // First pass computes misses; progress streams to stderr as JSONL.
    let report = campaign
        .run(&cache, &Telemetry::stderr())
        .expect("valid spec");
    println!(
        "first pass:  {} computed, {} cached, {:.1}s",
        report.computed(),
        report.cached(),
        report.wall.as_secs_f64()
    );

    for record in &report.cells {
        let result = record.outcome.result().expect("cell succeeded");
        let ed = result.energy_delay_improvement();
        println!(
            "  {:<26} dynamic-5% energy-delay improvement {:>5.1}%  (global {:>5.1}%)",
            record.cell.label(),
            100.0 * ed[2],
            100.0 * ed[3],
        );
    }

    // Second pass: everything is served from the cache, and the campaign's
    // canonical JSON document is byte-identical.
    let rerun = campaign
        .run(&cache, &Telemetry::disabled())
        .expect("valid spec");
    println!(
        "second pass: {} computed, {} cached, byte-identical: {}",
        rerun.computed(),
        rerun.cached(),
        report.to_json() == rerun.to_json()
    );
}
