//! Quickstart: simulate one benchmark on the baseline and MCD machines and
//! report performance and energy.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark] [instructions]
//! ```

use mcd::pipeline::{simulate, DomainId, MachineConfig};
use mcd::power::PowerModel;
use mcd::workload::suites;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gcc".into());
    let instructions: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);

    let Some(profile) = suites::by_name(&name) else {
        eprintln!(
            "unknown benchmark {name:?}; available: {:?}",
            suites::names()
        );
        std::process::exit(2);
    };
    println!(
        "benchmark {name} ({}, paper window: {})",
        profile.suite.label(),
        profile.paper_window
    );

    let power = PowerModel::paper_calibrated();
    let baseline = simulate(&MachineConfig::baseline(1), &profile, instructions);
    let mcd = simulate(&MachineConfig::baseline_mcd(1), &profile, instructions);

    let e_base = power.energy_of(&baseline);
    let e_mcd = power.energy_of(&mcd);

    println!("\nsingle-clock 1 GHz baseline:");
    println!("  time          {}", baseline.total_time);
    println!("  IPC           {:.3}", baseline.ipc());
    println!("  L1D miss      {:.2}%", 100.0 * baseline.l1d.miss_rate());
    println!("  bpred miss    {:.2}%", 100.0 * baseline.mispredict_rate());
    println!("  energy        {:.0} units", e_base.total());
    for d in DomainId::ALL {
        println!(
            "    {:<16} {:>5.1}%",
            d.label(),
            100.0 * e_base.domain_share(d)
        );
    }

    println!("\nfour-domain MCD at a static 1 GHz:");
    println!("  time          {}", mcd.total_time);
    println!(
        "  sync overhead {:+.2}% time, {:+.2}% energy",
        100.0 * (mcd.slowdown_vs(&baseline) - 1.0),
        100.0 * (e_mcd.total() / e_base.total() - 1.0)
    );
    println!(
        "\nthe MCD machine pays for inter-domain synchronization; run the\n\
         offline_analysis example to see per-domain scaling win it back."
    );
}
