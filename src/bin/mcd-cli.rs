//! Command-line front end for the MCD-DVFS simulator.
//!
//! ```text
//! mcd-cli list
//! mcd-cli run        <benchmark> [--config base|mcd|global:<mhz>] [--instructions N] [--seed S]
//! mcd-cli analyze    <benchmark> [--theta PCT] [--model xscale|transmeta] [--instructions N]
//! mcd-cli experiment <benchmark> [--instructions N] [--seed S] [--json]
//! mcd-cli campaign   run|status [--benchmarks a,b,..] [--seeds 1,2,..] [--instructions N]
//!                    [--models xscale,transmeta] [--policy SPEC]... [--dry-run]
//!                    [--workers W] [--analysis-threads T]
//!                    [--cache-dir DIR] [--telemetry FILE|-] [--checkpoint FILE]
//!                    [--checkpoint-every N] [--deadline SECS] [--json]
//! mcd-cli campaign   resume --checkpoint FILE [--workers W] [--cache-dir DIR]
//!                    [--telemetry FILE|-] [--deadline SECS] [--json]
//! mcd-cli campaign   report [--cache-dir DIR] [--json]
//! mcd-cli campaign   run --grid <addr> ...   # serve the campaign to TCP workers
//! mcd-cli cache      verify|scrub [--cache-dir DIR] [--recompute] [--json]
//! mcd-cli grid       serve --listen ADDR [--audit-rate N] [--heartbeat SECS]
//!                    [--heartbeat-timeout SECS] [sweep/cache/telemetry/checkpoint flags]
//! mcd-cli grid       worker --connect ADDR [--name TAG] [--deadline SECS]
//!                    [--heartbeat SECS] [--analysis-threads T]
//! mcd-cli bench snapshot [--out FILE] [--benchmarks a,b,..] [--seed S] [--instructions N]
//!                    [--model xscale|transmeta] [--analysis-threads T]
//! mcd-cli trace      <benchmark> [--instructions N] [--seed S] [--out FILE]
//!                    [--sample-every N] [--governor SPEC] [--static]
//! mcd-cli check      diff
//! mcd-cli check      fuzz [--seed S] [--cases N] [--out DIR]
//! mcd-cli check      replay FILE
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mcd::check::{self, FuzzConfig};
use mcd::core::{run_benchmark, ExperimentConfig, ScenarioSpec};
use mcd::grid::{GridCampaign, GridWorker};
use mcd::harness::{
    parse_model, BenchSnapshot, Campaign, CampaignReport, CampaignRollup, CampaignSpec,
    CellOutcome, ResultCache, ScrubReport, SlackDiskCache, Telemetry, ROLLUP_FILE, SLACK_CACHE_DIR,
};
use mcd::offline::{derive_schedule, OfflineConfig};
use mcd::pipeline::{
    simulate, simulate_governed_traced, simulate_traced, DomainId, MachineConfig, PolicySpec,
    TraceConfig,
};
use mcd::power::PowerModel;
use mcd::time::{DvfsModel, Frequency};
use mcd::trace::{chrome_trace_json, DOMAIN_LABELS};
use mcd::workload::suites;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mcd-cli list\n  mcd-cli run <benchmark> [--config base|mcd|global:<mhz>] \
         [--instructions N] [--seed S]\n  mcd-cli analyze <benchmark> [--theta PCT] \
         [--model xscale|transmeta] [--instructions N]\n  mcd-cli experiment <benchmark> \
         [--instructions N] [--seed S] [--json]\n  mcd-cli campaign run|status \
         [--benchmarks a,b,..] [--seeds 1,2,..] [--instructions N] \
         [--models xscale,transmeta] [--policy SPEC]... [--dry-run] [--workers W] \
         [--analysis-threads T] [--cache-dir DIR] \
         [--telemetry FILE|-] [--checkpoint FILE] [--checkpoint-every N] [--deadline SECS] \
         [--json]\n  \
         mcd-cli campaign resume \
         --checkpoint FILE [--workers W] [--cache-dir DIR] [--telemetry FILE|-] \
         [--deadline SECS] [--json]\n  mcd-cli campaign report [--cache-dir DIR] [--json]\n  \
         mcd-cli campaign run --grid ADDR [sweep/cache/telemetry/checkpoint flags]\n  \
         mcd-cli cache verify|scrub [--cache-dir DIR] [--recompute] [--json]\n  \
         mcd-cli grid serve --listen ADDR [--audit-rate N] [--heartbeat SECS] \
         [--heartbeat-timeout SECS] [sweep/cache/telemetry/checkpoint flags]\n  \
         mcd-cli grid worker --connect ADDR [--name TAG] [--deadline SECS] [--heartbeat SECS] \
         [--analysis-threads T]\n  \
         mcd-cli bench snapshot [--out FILE] \
         [--benchmarks a,b,..] [--seed S] [--instructions N] [--model xscale|transmeta] \
         [--analysis-threads T]\n  \
         mcd-cli trace <benchmark> [--instructions N] [--seed S] [--out FILE] \
         [--sample-every N] [--governor SPEC] [--static]\n  \
         mcd-cli check diff\n  \
         mcd-cli check fuzz [--seed S] [--cases N] [--out DIR]\n  \
         mcd-cli check replay FILE"
    );
    std::process::exit(2)
}

struct Opts {
    benchmark: String,
    instructions: u64,
    seed: u64,
    config: String,
    theta: f64,
    model: DvfsModel,
    json: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts {
        benchmark: String::new(),
        instructions: 120_000,
        seed: 5,
        config: "base".into(),
        theta: 0.05,
        model: DvfsModel::XScale,
        json: false,
    };
    let mut it = args.iter();
    match it.next() {
        Some(b) => opts.benchmark = b.clone(),
        None => usage(),
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--instructions" => {
                opts.instructions = value("--instructions").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--config" => opts.config = value("--config"),
            "--theta" => {
                opts.theta = value("--theta").parse::<f64>().unwrap_or_else(|_| usage()) / 100.0
            }
            "--model" => {
                opts.model = match value("--model").as_str() {
                    "xscale" => DvfsModel::XScale,
                    "transmeta" => DvfsModel::Transmeta,
                    _ => usage(),
                }
            }
            "--json" => opts.json = true,
            _ => usage(),
        }
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "list" => {
            println!("{:<9} {:<14} paper window", "name", "suite");
            for p in suites::all() {
                println!("{:<9} {:<14} {}", p.name, p.suite.label(), p.paper_window);
            }
        }
        "run" => cmd_run(parse_opts(&args[1..])),
        "analyze" => cmd_analyze(parse_opts(&args[1..])),
        "experiment" => cmd_experiment(parse_opts(&args[1..])),
        "campaign" => cmd_campaign(&args[1..]),
        "cache" => cmd_cache(&args[1..]),
        "grid" => cmd_grid(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "check" => cmd_check(&args[1..]),
        _ => usage(),
    }
}

fn cmd_bench(args: &[String]) {
    let Some(verb) = args.first() else { usage() };
    if verb != "snapshot" {
        usage()
    }
    let mut spec = CampaignSpec::paper(5, 240_000, DvfsModel::XScale);
    let mut out = String::from("BENCH_pr7.json");
    let mut analysis_threads: usize = 1;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--out" => out = value("--out"),
            "--benchmarks" => {
                spec.benchmarks = value("--benchmarks")
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--seed" => spec.seeds = vec![value("--seed").parse().unwrap_or_else(|_| usage())],
            "--instructions" => {
                spec.instructions = value("--instructions").parse().unwrap_or_else(|_| usage())
            }
            "--model" => {
                spec.models = vec![parse_model(&value("--model")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })]
            }
            "--analysis-threads" => {
                analysis_threads = value("--analysis-threads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    // A snapshot measures raw simulator throughput, so every cell must be
    // computed this run: use a private cold cache and discard it after.
    let cache_dir = std::env::temp_dir().join(format!("mcd-bench-snapshot-{}", std::process::id()));
    let cache = ResultCache::open(&cache_dir).unwrap_or_else(|e| {
        eprintln!("cannot open cache dir {}: {e}", cache_dir.display());
        std::process::exit(1)
    });
    eprintln!(
        "bench snapshot: {} benchmarks x {} instructions (cold cache)",
        spec.benchmark_names().len(),
        spec.instructions
    );
    let report = Campaign::new(spec.clone())
        .analysis_threads(analysis_threads)
        .run(&cache, &Telemetry::stderr())
        .unwrap_or_else(|e| {
            eprintln!("invalid campaign: {e}");
            std::process::exit(2)
        });
    let _ = std::fs::remove_dir_all(&cache_dir);
    let snapshot = BenchSnapshot::from_report(&spec, &report);
    std::fs::write(&out, snapshot.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1)
    });
    eprintln!(
        "bench snapshot: {} cells in {:.1}s (slowest {:.1}s) -> {out}",
        snapshot.cells.len(),
        snapshot.wall_s,
        snapshot.max_cell_s
    );
    eprintln!(
        "bench snapshot: phases {:.1}s trace-run, {:.1}s slack, {:.1}s cluster, {:.1}s simulate",
        snapshot.trace_run_s, snapshot.slack_s, snapshot.cluster_s, snapshot.simulate_s
    );
    if report.failed() > 0 {
        eprintln!("bench snapshot: {} cells FAILED", report.failed());
        std::process::exit(1);
    }
}

struct CampaignOpts {
    spec: CampaignSpec,
    workers: usize,
    analysis_threads: usize,
    cache_dir: String,
    telemetry: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: Option<usize>,
    deadline: Option<Duration>,
    grid: Option<String>,
    audit_rate: Option<u64>,
    heartbeat: Option<Duration>,
    heartbeat_timeout: Option<Duration>,
    dry_run: bool,
    json: bool,
}

fn parse_campaign_opts(args: &[String]) -> CampaignOpts {
    let mut opts = CampaignOpts {
        spec: CampaignSpec::paper(5, 120_000, DvfsModel::XScale),
        workers: 0,
        analysis_threads: 1,
        cache_dir: "target/mcd-campaign-cache".into(),
        telemetry: None,
        checkpoint: None,
        checkpoint_every: None,
        deadline: None,
        grid: None,
        audit_rate: None,
        heartbeat: None,
        heartbeat_timeout: None,
        dry_run: false,
        json: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        let secs = |name: &str, raw: String| -> Duration {
            let secs: f64 = raw.parse().unwrap_or_else(|_| usage());
            if !secs.is_finite() || secs <= 0.0 {
                eprintln!("{name} must be a positive number of seconds");
                usage()
            }
            Duration::from_secs_f64(secs)
        };
        match flag.as_str() {
            "--benchmarks" => {
                opts.spec.benchmarks = value("--benchmarks")
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--seeds" => {
                opts.spec.seeds = value("--seeds")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--instructions" => {
                opts.spec.instructions = value("--instructions").parse().unwrap_or_else(|_| usage())
            }
            "--models" => {
                opts.spec.models = value("--models")
                    .split(',')
                    .map(|m| {
                        parse_model(m).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            usage()
                        })
                    })
                    .collect()
            }
            "--policy" => opts.spec.policies.push(value("--policy")),
            "--dry-run" => opts.dry_run = true,
            "--workers" => opts.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--analysis-threads" => {
                opts.analysis_threads = value("--analysis-threads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--cache-dir" => opts.cache_dir = value("--cache-dir"),
            "--telemetry" => opts.telemetry = Some(value("--telemetry")),
            "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")),
            "--checkpoint-every" => {
                let every: usize = value("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if every == 0 {
                    eprintln!("--checkpoint-every must be at least 1");
                    usage()
                }
                opts.checkpoint_every = Some(every)
            }
            "--deadline" => opts.deadline = Some(secs("--deadline", value("--deadline"))),
            "--grid" => opts.grid = Some(value("--grid")),
            "--audit-rate" => {
                opts.audit_rate = Some(value("--audit-rate").parse().unwrap_or_else(|_| usage()))
            }
            "--heartbeat" => opts.heartbeat = Some(secs("--heartbeat", value("--heartbeat"))),
            "--heartbeat-timeout" => {
                opts.heartbeat_timeout =
                    Some(secs("--heartbeat-timeout", value("--heartbeat-timeout")))
            }
            "--json" => opts.json = true,
            _ => usage(),
        }
    }
    opts
}

/// Opens the telemetry sink a campaign was asked for (`append` keeps one
/// log narrating the whole campaign across interruptions).
fn open_telemetry(spec: Option<&str>, append: bool) -> Telemetry {
    match spec {
        None => Telemetry::disabled(),
        Some("-") => Telemetry::stderr(),
        Some(path) if append => Telemetry::append_file(path.as_ref()).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            std::process::exit(1)
        }),
        Some(path) => Telemetry::to_file(path.as_ref()).unwrap_or_else(|e| {
            eprintln!("cannot open telemetry file {path}: {e}");
            std::process::exit(1)
        }),
    }
}

/// Serves a campaign to TCP workers: binds `addr`, streams cells to
/// whoever connects, and reports like a local run. Used by both
/// `campaign run --grid ADDR` and `grid serve --listen ADDR`.
fn run_grid_campaign(addr: &str, resume: bool, opts: &CampaignOpts, cache: &ResultCache) -> ! {
    if opts.workers != 0 {
        eprintln!("note: --workers is ignored with --grid (workers are remote processes)");
    }
    if opts.deadline.is_some() {
        eprintln!("note: --deadline is ignored with --grid (set it on each `grid worker`)");
    }
    let mut campaign = if resume {
        let Some(path) = opts.checkpoint.clone() else {
            eprintln!("campaign resume requires --checkpoint FILE");
            usage()
        };
        let campaign = GridCampaign::from_checkpoint(path.as_ref()).unwrap_or_else(|e| {
            eprintln!("cannot resume from {path}: {e}");
            std::process::exit(2)
        });
        campaign.checkpoint(path)
    } else {
        let mut campaign = GridCampaign::new(opts.spec.clone());
        if let Some(path) = &opts.checkpoint {
            campaign = campaign.checkpoint(path);
        }
        campaign
    };
    campaign = campaign.interrupt(install_sigint());
    if let Some(rate) = opts.audit_rate {
        campaign = campaign.audit_rate(rate);
    }
    if let Some(every) = opts.checkpoint_every {
        campaign = campaign.checkpoint_every(every);
    }
    if opts.heartbeat.is_some() || opts.heartbeat_timeout.is_some() {
        // Defaults mirror the coordinator's own: 1 s interval, 10 s
        // timeout. Setting only one flag still validates the pair.
        let interval = opts.heartbeat.unwrap_or(Duration::from_secs(1));
        let timeout = opts.heartbeat_timeout.unwrap_or(Duration::from_secs(10));
        campaign = campaign.heartbeats(interval, timeout).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        });
    }
    let server = campaign.bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot listen on {addr}: {e}");
        std::process::exit(1)
    });
    match server.local_addr() {
        Ok(bound) => eprintln!("grid coordinator listening on {bound}"),
        Err(_) => eprintln!("grid coordinator listening on {addr}"),
    }
    let telemetry = open_telemetry(opts.telemetry.as_deref(), resume);
    let report = server.run(cache, &telemetry).unwrap_or_else(|e| {
        eprintln!("grid campaign failed: {e}");
        std::process::exit(2)
    });
    let mut code = report_campaign(&report, opts);
    if code == 0 {
        // A clean report can still hide integrity trouble (a quarantined
        // worker whose cells were recomputed, say); the rollup knows.
        if let Ok(rollup) = CampaignRollup::load(&cache.dir().join(ROLLUP_FILE)) {
            if !rollup.healthy() {
                eprintln!("grid campaign finished with integrity findings (see `campaign report`)");
                code = 1;
            }
        }
    }
    std::process::exit(code)
}

fn cmd_grid(args: &[String]) {
    let Some(verb) = args.first() else { usage() };
    match verb.as_str() {
        "serve" => {
            // `grid serve --listen ADDR` is `campaign run --grid ADDR`
            // under a name that reads naturally on the coordinator host.
            let mut listen = None;
            let mut rest = Vec::new();
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--listen" {
                    listen = it.next().cloned();
                    if listen.is_none() {
                        eprintln!("missing value for --listen");
                        usage()
                    }
                } else {
                    rest.push(flag.clone());
                }
            }
            let Some(addr) = listen else {
                eprintln!("grid serve requires --listen ADDR");
                usage()
            };
            let opts = parse_campaign_opts(&rest);
            let cache = ResultCache::open(&opts.cache_dir).unwrap_or_else(|e| {
                eprintln!("cannot open cache dir {}: {e}", opts.cache_dir);
                std::process::exit(1)
            });
            run_grid_campaign(&addr, false, &opts, &cache)
        }
        "worker" => cmd_grid_worker(&args[1..]),
        _ => usage(),
    }
}

fn cmd_grid_worker(args: &[String]) {
    let mut connect: Option<String> = None;
    let mut name = format!("worker-{}", std::process::id());
    let mut deadline: Option<Duration> = None;
    let mut heartbeat: Option<Duration> = None;
    let mut analysis_threads: usize = 1;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        let secs = |name: &str, raw: String| -> Duration {
            let secs: f64 = raw.parse().unwrap_or_else(|_| usage());
            if !secs.is_finite() || secs <= 0.0 {
                eprintln!("{name} must be a positive number of seconds");
                usage()
            }
            Duration::from_secs_f64(secs)
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")),
            "--name" => name = value("--name"),
            "--deadline" => deadline = Some(secs("--deadline", value("--deadline"))),
            "--heartbeat" => heartbeat = Some(secs("--heartbeat", value("--heartbeat"))),
            "--analysis-threads" => {
                analysis_threads = value("--analysis-threads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    let Some(addr) = connect else {
        eprintln!("grid worker requires --connect ADDR");
        usage()
    };
    let mut worker = GridWorker::connect(addr.clone())
        .name(&name)
        .analysis_threads(analysis_threads);
    if let Some(d) = deadline {
        worker = worker.deadline(d);
    }
    if let Some(h) = heartbeat {
        worker = worker.heartbeat_interval(h);
    }
    eprintln!("grid worker {name}: connecting to {addr}");
    match worker.run() {
        Ok(summary) => {
            eprintln!(
                "grid worker {name}: {} cells over {} session(s), {}",
                summary.cells,
                summary.sessions,
                if summary.drained {
                    "coordinator drained (campaign interrupted)"
                } else {
                    "campaign complete"
                }
            );
        }
        Err(e) => {
            eprintln!("grid worker {name}: {e}");
            std::process::exit(1);
        }
    }
}

/// The campaign interrupt flag shared with the SIGINT handler. The handler
/// only performs an atomic load of the `OnceLock` and an atomic store on
/// the flag — both async-signal-safe (no allocation, no locking).
static SIGINT_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(flag) = SIGINT_FLAG.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Installs a SIGINT handler that raises the campaign interrupt flag, so
/// Ctrl-C drains in-flight cells and leaves a resumable checkpoint instead
/// of killing the process mid-write.
fn install_sigint() -> Arc<AtomicBool> {
    let flag = SIGINT_FLAG
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    // Raw libc `signal` so the build needs no external crates. On error
    // (SIG_ERR) the flag simply never fires and Ctrl-C keeps its default
    // kill behavior — strictly no worse than before.
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        signal(SIGINT, on_sigint);
    }
    flag
}

/// Prints the per-cell table and summary line for a finished campaign and
/// returns the process exit code.
fn report_campaign(report: &CampaignReport, opts: &CampaignOpts) -> i32 {
    if opts.json {
        match report.to_json() {
            Some(json) => println!("{json}"),
            None => {
                eprintln!("campaign has unfinished cells; no result document");
            }
        }
    } else {
        println!("{:<28} {:>9}  outcome", "cell", "elapsed");
        for record in &report.cells {
            let outcome = match &record.outcome {
                CellOutcome::Cached(_) => "cached".to_string(),
                CellOutcome::Computed { attempts: 1, .. } => "computed".to_string(),
                CellOutcome::Computed { attempts, .. } => {
                    format!("computed (attempt {attempts})")
                }
                CellOutcome::Failed(f) => format!("FAILED: {f}"),
                CellOutcome::Stalled { waited } => {
                    format!("STALLED after {:.1}s (abandoned)", waited.as_secs_f64())
                }
                CellOutcome::Skipped => "skipped (interrupted)".to_string(),
            };
            println!(
                "{:<28} {:>8.2}s  {}",
                record.cell.label(),
                record.elapsed.as_secs_f64(),
                outcome
            );
        }
    }
    eprintln!(
        "campaign: {} computed, {} cached, {} failed, {} stalled, {} skipped in {:.1}s",
        report.computed(),
        report.cached(),
        report.failed(),
        report.stalled(),
        report.skipped(),
        report.wall.as_secs_f64()
    );
    if report.interrupted {
        match &opts.checkpoint {
            Some(path) => eprintln!(
                "campaign interrupted; resume with: mcd-cli campaign resume --checkpoint {path}"
            ),
            None => eprintln!(
                "campaign interrupted (no checkpoint; rerun recomputes only uncached cells)"
            ),
        }
        return 130;
    }
    if report.failed() > 0 || report.stalled() > 0 {
        return 1;
    }
    0
}

/// `mcd-cli campaign run --dry-run`: prints the expanded cell grid — one
/// row per cell with its cache key and hit/miss preview, plus the scenario
/// column every cell runs — and exits without executing anything.
fn dry_run_campaign(opts: &CampaignOpts, cache: &ResultCache) -> ! {
    let campaign = Campaign::new(opts.spec.clone());
    let rows = campaign.status(cache).unwrap_or_else(|e| {
        eprintln!("invalid campaign: {e}");
        std::process::exit(2)
    });
    // Every cell of one spec runs the same scenario column: the five paper
    // configurations plus one governed row per policy.
    let mut scenarios = vec![
        ScenarioSpec::baseline().label(),
        ScenarioSpec::baseline_mcd().label(),
        ScenarioSpec::dynamic(opts.spec.thetas[0]).label(),
        ScenarioSpec::dynamic(opts.spec.thetas[1]).label(),
        ScenarioSpec::global_matched().label(),
    ];
    if let Some((cell, _, _)) = rows.first() {
        for policy in &cell.policies {
            let policy = PolicySpec::parse(policy).expect("expanded policies are canonical");
            scenarios.push(ScenarioSpec::online(policy).label());
        }
    }
    println!(
        "dry run: {} cells x {} scenarios (nothing executed)",
        rows.len(),
        scenarios.len()
    );
    println!("scenarios: {}", scenarios.join(" "));
    println!("{:<44} {:<12}  cache", "cell", "key");
    let cached = rows.iter().filter(|(_, _, hit)| *hit).count();
    for (cell, key, hit) in &rows {
        println!(
            "{:<44} {}  {}",
            cell.label(),
            &key.hex()[..12],
            if *hit { "cached" } else { "missing" }
        );
    }
    println!(
        "{cached}/{} cells cached in {}; {} to compute",
        rows.len(),
        cache.dir().display(),
        rows.len() - cached
    );
    std::process::exit(0)
}

fn cmd_campaign(args: &[String]) {
    let Some(verb) = args.first() else { usage() };
    let mut opts = parse_campaign_opts(&args[1..]);
    let cache = ResultCache::open(&opts.cache_dir).unwrap_or_else(|e| {
        eprintln!("cannot open cache dir {}: {e}", opts.cache_dir);
        std::process::exit(1)
    });
    match verb.as_str() {
        "run" | "resume" => {
            if opts.dry_run {
                if verb != "run" {
                    eprintln!("--dry-run only applies to `campaign run`");
                    usage()
                }
                dry_run_campaign(&opts, &cache)
            }
            if let Some(addr) = opts.grid.clone() {
                run_grid_campaign(&addr, verb == "resume", &opts, &cache)
            }
            let mut campaign = if verb == "resume" {
                // Resume rebuilds the whole campaign from the manifest: the
                // spec is embedded, sweep flags are ignored.
                let Some(path) = opts.checkpoint.clone() else {
                    eprintln!("campaign resume requires --checkpoint FILE");
                    usage()
                };
                let campaign = Campaign::from_checkpoint(path.as_ref()).unwrap_or_else(|e| {
                    eprintln!("cannot resume from {path}: {e}");
                    std::process::exit(2)
                });
                opts.spec = campaign.spec().clone();
                campaign
            } else {
                let mut campaign = Campaign::new(opts.spec.clone());
                if let Some(path) = &opts.checkpoint {
                    campaign = campaign.checkpoint(path);
                }
                campaign
            };
            if opts.audit_rate.is_some()
                || opts.heartbeat.is_some()
                || opts.heartbeat_timeout.is_some()
            {
                eprintln!("note: --audit-rate/--heartbeat flags only apply with --grid");
            }
            campaign = campaign
                .workers(opts.workers)
                .analysis_threads(opts.analysis_threads);
            if let Some(every) = opts.checkpoint_every {
                campaign = campaign.checkpoint_every(every);
            }
            if let Some(deadline) = opts.deadline {
                campaign = campaign.deadline(deadline);
            }
            campaign = campaign.interrupt(install_sigint());
            let telemetry = open_telemetry(opts.telemetry.as_deref(), verb == "resume");
            let report = campaign.run(&cache, &telemetry).unwrap_or_else(|e| {
                eprintln!("campaign failed: {e}");
                std::process::exit(2)
            });
            let code = report_campaign(&report, &opts);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "report" => {
            let path = cache.dir().join(ROLLUP_FILE);
            let rollup = CampaignRollup::load(&path).unwrap_or_else(|e| {
                eprintln!(
                    "no campaign rollup at {} ({e}); run `mcd-cli campaign run` first",
                    path.display()
                );
                std::process::exit(1)
            });
            if opts.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&rollup).expect("serializable")
                );
            } else {
                print!("{}", rollup.table());
            }
            if !rollup.healthy() {
                eprintln!("campaign report: failed, stalled, or diverged cells present");
                std::process::exit(1);
            }
        }
        "status" => {
            let campaign = Campaign::new(opts.spec.clone());
            let rows = campaign.status(&cache).unwrap_or_else(|e| {
                eprintln!("invalid campaign: {e}");
                std::process::exit(2)
            });
            let cached = rows.iter().filter(|(_, _, hit)| *hit).count();
            for (cell, key, hit) in &rows {
                println!(
                    "{:<28} {}  {}",
                    cell.label(),
                    &key.hex()[..12],
                    if *hit { "cached" } else { "missing" }
                );
            }
            println!(
                "{cached}/{} cells cached in {}",
                rows.len(),
                cache.dir().display()
            );
        }
        _ => usage(),
    }
}

/// `mcd-cli cache verify|scrub`: re-verifies every result-cache entry and
/// slack profile against its recorded digest. `verify` is read-only and
/// exits nonzero if anything is corrupt; `scrub` moves corrupt entries to
/// `quarantine/` so the next campaign recomputes them, and with
/// `--recompute` runs that repair campaign immediately (pass the same
/// sweep flags the cache was built with).
fn cmd_cache(args: &[String]) {
    let Some(verb) = args.first() else { usage() };
    let quarantine = match verb.as_str() {
        "verify" => false,
        "scrub" => true,
        _ => usage(),
    };
    let mut recompute = false;
    let mut rest = Vec::new();
    for flag in &args[1..] {
        if flag == "--recompute" {
            recompute = true;
        } else {
            rest.push(flag.clone());
        }
    }
    if recompute && !quarantine {
        eprintln!("--recompute only applies to `cache scrub`");
        usage()
    }
    let opts = parse_campaign_opts(&rest);
    let cache = ResultCache::open(&opts.cache_dir).unwrap_or_else(|e| {
        eprintln!("cannot open cache dir {}: {e}", opts.cache_dir);
        std::process::exit(1)
    });
    let results = cache.scrub(quarantine).unwrap_or_else(|e| {
        eprintln!("cannot walk result cache: {e}");
        std::process::exit(1)
    });
    let slack = SlackDiskCache::open(cache.dir().join(SLACK_CACHE_DIR))
        .and_then(|store| store.scrub(quarantine))
        .unwrap_or_else(|e| {
            eprintln!("cannot walk slack cache: {e}");
            std::process::exit(1)
        });

    if opts.json {
        let mut doc = serde::Map::new();
        doc.insert("mode".to_string(), serde::Value::String(verb.to_string()));
        doc.insert("results".to_string(), scrub_value(&results));
        doc.insert("slack".to_string(), scrub_value(&slack));
        println!(
            "{}",
            serde_json::to_string_pretty(&serde::Value::Object(doc)).expect("serializable")
        );
    } else {
        print_scrub("result cache", &results);
        print_scrub("slack cache", &slack);
    }

    let clean = results.clean() && slack.clean();
    if recompute {
        // The quarantined entries are gone from the cache, so an ordinary
        // campaign run recomputes exactly those cells (everything intact
        // is a cache hit).
        let telemetry = open_telemetry(opts.telemetry.as_deref(), true);
        let report = Campaign::new(opts.spec.clone())
            .workers(opts.workers)
            .analysis_threads(opts.analysis_threads)
            .run(&cache, &telemetry)
            .unwrap_or_else(|e| {
                eprintln!("repair campaign failed: {e}");
                std::process::exit(2)
            });
        eprintln!(
            "cache scrub: repair recomputed {} cell(s), {} cached",
            report.computed(),
            report.cached()
        );
        if report.failed() > 0 || report.stalled() > 0 {
            std::process::exit(1);
        }
    } else if !quarantine && !clean {
        std::process::exit(1);
    }
}

fn print_scrub(label: &str, report: &ScrubReport) {
    println!(
        "{label}: {} entries checked, {} corrupt",
        report.checked,
        report.findings.len()
    );
    for f in &report.findings {
        match &f.evidence {
            Some(path) => println!("  {} {} -> {}", &f.key[..12], f.kind.tag(), path.display()),
            None => println!("  {} {}", &f.key[..12], f.kind.tag()),
        }
    }
}

fn scrub_value(report: &ScrubReport) -> serde::Value {
    use serde::{Map, Serialize, Value};
    let mut doc = Map::new();
    doc.insert("checked".to_string(), report.checked.to_value());
    doc.insert(
        "corrupt".to_string(),
        Value::Array(
            report
                .findings
                .iter()
                .map(|f| {
                    let mut e = Map::new();
                    e.insert("key".to_string(), Value::String(f.key.clone()));
                    e.insert("kind".to_string(), Value::String(f.kind.tag().to_string()));
                    if let Some(p) = &f.evidence {
                        e.insert(
                            "quarantined_to".to_string(),
                            Value::String(p.display().to_string()),
                        );
                    }
                    Value::Object(e)
                })
                .collect(),
        ),
    );
    Value::Object(doc)
}

/// `mcd-cli trace <benchmark>`: run one cell with the trace recorder
/// attached and export the timeline as Chrome trace_event JSON (load the
/// file in `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// By default the run is driven by the online attack/decay governor on the
/// baseline MCD machine, so the per-domain frequency stairsteps actually
/// move; `--governor SPEC` swaps in any registry policy
/// (`id[:key=value,…]`, e.g. `queue-pi:setpoint=0.6`) and `--static`
/// traces the ungoverned machine instead.
fn cmd_trace(args: &[String]) {
    let Some(benchmark) = args.first() else {
        usage()
    };
    if benchmark.starts_with("--") {
        usage()
    }
    let mut instructions: u64 = 120_000;
    let mut seed: u64 = 5;
    let mut out = format!("trace_{benchmark}.json");
    let mut cfg = TraceConfig::full();
    let mut governed = true;
    let mut governor_spec = "attack-decay".to_string();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--instructions" => {
                instructions = value("--instructions").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => out = value("--out"),
            "--sample-every" => {
                cfg.sample_every = value("--sample-every").parse().unwrap_or_else(|_| usage())
            }
            "--governor" => governor_spec = value("--governor"),
            "--static" => governed = false,
            _ => usage(),
        }
    }
    let profile = suites::by_name(benchmark).unwrap_or_else(|| {
        eprintln!("unknown benchmark {benchmark:?}; try `mcd-cli list`");
        std::process::exit(2)
    });
    let machine = MachineConfig::baseline_mcd(seed);
    let (run, trace) = if governed {
        let governor = PolicySpec::parse(&governor_spec)
            .and_then(|policy| policy.build())
            .unwrap_or_else(|e| {
                eprintln!("invalid --governor {governor_spec:?}: {e}");
                std::process::exit(2)
            });
        simulate_governed_traced(&machine, &profile, instructions, governor, cfg)
    } else {
        simulate_traced(&machine, &profile, instructions, cfg)
    };
    std::fs::write(&out, chrome_trace_json(&trace)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1)
    });
    eprintln!(
        "traced {} x {} instructions ({}, IPC {:.3}) -> {out}",
        profile.name,
        run.committed,
        run.total_time,
        run.ipc()
    );
    eprintln!(
        "{:<16} {:>9} {:>7} {:>8} {:>11} {:>10}",
        "domain", "mean MHz", "steps", "re-locks", "sync stalls", "occupancy"
    );
    for (i, label) in DOMAIN_LABELS.iter().enumerate() {
        let d = &trace.domains[i];
        eprintln!(
            "{:<16} {:>9.1} {:>7} {:>8} {:>11} {:>10.3}",
            label,
            d.counters.mean_frequency_hz() / 1e6,
            d.counters.freq_changes,
            d.counters.relocks,
            d.counters.sync_crossings,
            d.counters.mean_occupancy()
        );
    }
    eprintln!(
        "total sync penalty: {:.3} us over {} crossings",
        trace.total_sync_penalty_femtos() as f64 / 1e9,
        trace
            .domains
            .iter()
            .map(|d| d.counters.sync_crossings)
            .sum::<u64>()
    );
    eprintln!("open in chrome://tracing or https://ui.perfetto.dev");
}

/// `mcd-cli check`: the correctness harness. `diff` sweeps the built-in
/// configuration lattice through the differential oracle (reference
/// interpreter vs. optimized engine, byte equality); `fuzz` runs a seeded
/// campaign over random configurations, shrinks any failure to a minimal
/// case, and publishes it as repro JSON (default `check-failures/`);
/// `replay` re-runs one published repro file.
fn cmd_check(args: &[String]) {
    let Some(verb) = args.first() else { usage() };
    match verb.as_str() {
        "diff" => {
            let cases = check::lattice();
            let mut failed = 0usize;
            for case in &cases {
                let verdict = match check::run_differential(case) {
                    Ok(out) if out.is_pass() => "ok".to_string(),
                    Ok(out) => {
                        failed += 1;
                        format!("FAILED: {out:?}")
                    }
                    Err(e) => {
                        failed += 1;
                        format!("INVALID: {e}")
                    }
                };
                println!(
                    "{:<8} {:<6} {:<7} {:>5} MHz {:<13} {verdict}",
                    case.benchmark, case.pipeline, case.mode, case.mhz, case.governor
                );
            }
            eprintln!(
                "check diff: {}/{} cases match the reference interpreter",
                cases.len() - failed,
                cases.len()
            );
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "fuzz" => {
            let mut cfg = FuzzConfig {
                seed: 5,
                cases: 64,
                out_dir: "check-failures".into(),
            };
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> String {
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("missing value for {name}");
                            usage()
                        })
                        .clone()
                };
                match flag.as_str() {
                    "--seed" => cfg.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
                    "--cases" => cfg.cases = value("--cases").parse().unwrap_or_else(|_| usage()),
                    "--out" => cfg.out_dir = value("--out").into(),
                    _ => usage(),
                }
            }
            let report = check::fuzz(&cfg).unwrap_or_else(|e| {
                eprintln!("check fuzz: {e}");
                std::process::exit(1)
            });
            if report.swept_tmp > 0 {
                eprintln!(
                    "check fuzz: swept {} stale tmp file(s) from {}",
                    report.swept_tmp,
                    cfg.out_dir.display()
                );
            }
            for f in &report.failures {
                eprintln!(
                    "check fuzz: {} — {} -> {}",
                    f.kind.as_str(),
                    f.detail,
                    f.repro.display()
                );
            }
            eprintln!(
                "check fuzz: {} case(s), {} fault-injected, {} failure(s)",
                report.executed,
                report.chaos_cases,
                report.failures.len()
            );
            if !report.is_clean() {
                std::process::exit(1);
            }
        }
        "replay" => {
            let Some(path) = args.get(1) else {
                eprintln!("check replay requires FILE");
                usage()
            };
            match check::fuzz::replay_file(path.as_ref()) {
                Ok(None) => eprintln!("check replay: {path}: no longer reproduces"),
                Ok(Some((kind, detail))) => {
                    eprintln!(
                        "check replay: {path}: still fails ({}): {detail}",
                        kind.as_str()
                    );
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("check replay: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => usage(),
    }
}

fn machine_for(opts: &Opts) -> MachineConfig {
    match opts.config.as_str() {
        "base" => MachineConfig::baseline(opts.seed),
        "mcd" => MachineConfig::baseline_mcd(opts.seed),
        other => match other.strip_prefix("global:") {
            Some(mhz) => MachineConfig::global(
                opts.seed,
                Frequency::from_mhz(mhz.parse().unwrap_or_else(|_| usage())),
            ),
            None => usage(),
        },
    }
}

fn profile_for(opts: &Opts) -> mcd::workload::BenchmarkProfile {
    suites::by_name(&opts.benchmark).unwrap_or_else(|| {
        eprintln!("unknown benchmark {:?}; try `mcd-cli list`", opts.benchmark);
        std::process::exit(2)
    })
}

fn cmd_run(opts: Opts) {
    let profile = profile_for(&opts);
    let machine = machine_for(&opts);
    let run = simulate(&machine, &profile, opts.instructions);
    let energy = PowerModel::paper_calibrated().energy_of(&run);
    println!("benchmark      {}", profile.name);
    println!("configuration  {}", opts.config);
    println!("instructions   {}", run.committed);
    println!("time           {}", run.total_time);
    println!("IPC            {:.3}", run.ipc());
    println!("L1D miss       {:.2}%", 100.0 * run.l1d.miss_rate());
    println!("L1I miss       {:.2}%", 100.0 * run.l1i.miss_rate());
    println!("L2 miss        {:.2}%", 100.0 * run.l2.miss_rate());
    println!("bpred miss     {:.2}%", 100.0 * run.mispredict_rate());
    println!("energy         {:.0} units", energy.total());
    for d in DomainId::ALL {
        println!(
            "  {:<16} {:>5.1}%",
            d.label(),
            100.0 * energy.domain_share(d)
        );
    }
}

fn cmd_analyze(opts: Opts) {
    let profile = profile_for(&opts);
    let cfg = OfflineConfig::paper(opts.theta, opts.model);
    let (analysis, run) = derive_schedule(opts.seed, &profile, opts.instructions, &cfg);
    println!(
        "analyzed {} instructions ({}) at θ = {:.1}%, {:?} model",
        opts.instructions,
        run.total_time,
        100.0 * opts.theta,
        opts.model
    );
    println!("reconfigurations: {}", analysis.schedule.len());
    for d in &DomainId::ALL[1..] {
        let s = &analysis.stats[d.index()];
        println!(
            "  {:<16} mean {:>7.0} MHz, range {:>4.0}-{:<4.0} MHz, {} changes",
            d.label(),
            s.mean_frequency_hz / 1e6,
            s.min_frequency.as_mhz_f64(),
            s.max_frequency.as_mhz_f64(),
            s.reconfigurations
        );
    }
    println!("\nschedule (JSON):");
    println!("{}", analysis.schedule.to_json().expect("serializable"));
}

fn cmd_experiment(opts: Opts) {
    let profile = profile_for(&opts);
    let cfg = ExperimentConfig::paper(opts.seed, opts.instructions, opts.model);
    let results = run_benchmark(&profile, &cfg);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("serializable")
        );
        return;
    }
    let labels = ["baseline MCD", "dynamic-1%", "dynamic-5%", "global"];
    let perf = results.perf_degradation();
    let energy = results.energy_savings();
    let ed = results.energy_delay_improvement();
    println!(
        "benchmark {}; global settled on {}",
        results.name, results.global_frequency
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "config", "perf deg", "energy", "energy-delay"
    );
    for i in 0..4 {
        println!(
            "{:<14} {:>9.2}% {:>9.2}% {:>11.2}%",
            labels[i],
            100.0 * perf[i],
            100.0 * energy[i],
            100.0 * ed[i]
        );
    }
}
