//! # MCD-DVFS — Multiple Clock Domain processor simulation
//!
//! A from-scratch Rust reproduction of *Semeraro et al., "Energy-Efficient
//! Processor Design Using Multiple Clock Domains with Dynamic Voltage and
//! Frequency Scaling" (HPCA 2002)*: an Alpha-21264-like out-of-order
//! processor split into four clock domains (front end / integer / floating
//! point / load-store), with per-domain dynamic voltage and frequency
//! scaling, an off-line slack-analysis tool that derives reconfiguration
//! schedules, and a Wattch-style power model.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`time`] — clocks, jitter, synchronization windows, DVFS models;
//! * [`workload`] — the synthetic benchmark suite (Table 2);
//! * [`uarch`] — caches, predictors, queues, rename, functional units;
//! * [`pipeline`] — the four-domain cycle-level simulator;
//! * [`power`] — the energy model;
//! * [`offline`] — the shaker / clustering analysis tool;
//! * [`core`] — the five machine configurations and the experiment driver;
//! * [`harness`] — the parallel campaign engine (sweeps, result cache,
//!   worker pool, fault isolation, JSONL telemetry);
//! * [`grid`] — distributed campaign execution (TCP coordinator/worker
//!   sharding with deterministic assembly and fault-tolerant
//!   reassignment);
//! * [`trace`] — the observability layer (per-domain event sinks,
//!   run traces, Chrome trace_event export);
//! * [`check`] — the correctness harness (differential oracle against a
//!   naive reference interpreter, runtime invariants, config fuzzer).
//!
//! # Quickstart
//!
//! ```
//! use mcd::pipeline::{simulate, MachineConfig};
//! use mcd::power::PowerModel;
//! use mcd::workload::suites;
//!
//! let profile = suites::by_name("gcc").expect("known benchmark");
//! let run = simulate(&MachineConfig::baseline(1), &profile, 5_000);
//! let energy = PowerModel::paper_calibrated().energy_of(&run);
//! println!("IPC {:.2}, energy {:.0} units", run.ipc(), energy.total());
//! ```

pub mod golden;

pub use mcd_check as check;
pub use mcd_core as core;
pub use mcd_grid as grid;
pub use mcd_harness as harness;
pub use mcd_offline as offline;
pub use mcd_pipeline as pipeline;
pub use mcd_power as power;
pub use mcd_time as time;
pub use mcd_trace as trace;
pub use mcd_uarch as uarch;
pub use mcd_workload as workload;
