//! Golden-fixture support: the fixed matrix of simulator configurations
//! whose serialized [`RunResult`]s are pinned in
//! `tests/fixtures/golden_runresults.json`.
//!
//! The simulator's results must stay byte-identical across performance
//! work, so the fixture is regenerated only when a PR deliberately changes
//! simulated behaviour (and the diff is then part of the review):
//!
//! ```text
//! cargo run --release --example golden_dump > tests/fixtures/golden_runresults.json
//! ```
//!
//! `tests/golden_runresult.rs` re-renders the matrix and compares it to the
//! committed fixture byte-for-byte; the `golden_dump` example prints the
//! same rendering. Both go through [`render`] so they cannot drift apart.

use mcd_pipeline::{
    simulate, AttackDecay, DomainId, FrequencySchedule, MachineConfig, Pipeline, RunResult,
    ScheduleEntry,
};
use mcd_time::{DvfsModel, Femtos, Frequency};
use mcd_workload::{suites, WorkloadGenerator};

/// The fixture matrix: every clocking style, both DVFS models, an on-line
/// governor run, and one trace-collecting run.
pub fn golden_matrix() -> Vec<(String, RunResult)> {
    let mut out = Vec::new();
    let mut push = |name: &str, r: RunResult| out.push((name.to_string(), r));

    let prof = |name: &str| suites::by_name(name).expect("known benchmark");

    push(
        "baseline_adpcm_s1",
        simulate(&MachineConfig::baseline(1), &prof("adpcm"), 6_000),
    );
    push(
        "baseline_mcd_gcc_s5",
        simulate(&MachineConfig::baseline_mcd(5), &prof("gcc"), 6_000),
    );
    push(
        "baseline_mcd_swim_s2",
        simulate(&MachineConfig::baseline_mcd(2), &prof("swim"), 6_000),
    );
    push(
        "global500_mcf_s3",
        simulate(
            &MachineConfig::global(3, Frequency::from_mhz(500)),
            &prof("mcf"),
            6_000,
        ),
    );
    let sched = || {
        FrequencySchedule::from_entries(vec![
            ScheduleEntry {
                at: Femtos::from_micros(1),
                domain: DomainId::FloatingPoint,
                frequency: Frequency::MIN_SCALED,
            },
            ScheduleEntry {
                at: Femtos::from_micros(5),
                domain: DomainId::Integer,
                frequency: Frequency::from_mhz(600),
            },
            ScheduleEntry {
                at: Femtos::from_micros(40),
                domain: DomainId::Integer,
                frequency: Frequency::GHZ,
            },
        ])
    };
    push(
        "dynamic_transmeta_g721_s5",
        simulate(
            &MachineConfig::dynamic(5, DvfsModel::Transmeta, sched()),
            &prof("g721"),
            12_000,
        ),
    );
    push(
        "dynamic_xscale_parser_s5",
        simulate(
            &MachineConfig::dynamic(5, DvfsModel::XScale, sched()),
            &prof("parser"),
            12_000,
        ),
    );
    {
        let machine = MachineConfig::baseline_mcd(7);
        let generator = WorkloadGenerator::new(prof("bzip2"), machine.seed);
        let r = Pipeline::new(machine, generator)
            .run_with_governor(12_000, Box::new(AttackDecay::paper_like()));
        push("governor_bzip2_s7", r);
    }
    {
        let mut machine = MachineConfig::baseline_mcd(4);
        machine.collect_trace = true;
        push(
            "traced_mcd_adpcm_s4",
            simulate(&machine, &prof("adpcm"), 3_000),
        );
    }
    out
}

/// Renders the matrix in the fixture's on-disk format (trailing newline
/// included).
pub fn render() -> String {
    let entries: Vec<String> = golden_matrix()
        .into_iter()
        .map(|(name, r)| {
            let body = serde_json::to_string(&r).expect("RunResult serializes");
            format!("  {:?}: {body}", name)
        })
        .collect();
    format!("{{\n{}\n}}\n", entries.join(",\n"))
}
